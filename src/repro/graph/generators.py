"""Synthetic attributed-network generators.

The paper evaluates on Cora/Citeseer/Pubmed/Polblogs.  Those files are not
available offline, so the library generates *degree-corrected stochastic
block models with class-correlated sparse binary attributes* — the two
properties every AnECI experiment exercises (recoverable community
structure; attributes that echo it) are planted explicitly.  See DESIGN.md
§2 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["attributed_sbm", "planted_partition", "topic_features",
           "lfr_like", "sparse_dcsbm"]


def attributed_sbm(sizes: list[int], p_in: float, p_out: float,
                   num_features: int, rng: np.random.Generator,
                   feature_topics_per_class: int | None = None,
                   feature_active_in: float = 0.18,
                   feature_active_out: float = 0.01,
                   degree_exponent: float = 2.5,
                   identity_features: bool = False,
                   name: str = "sbm") -> Graph:
    """Generate an attributed degree-corrected SBM.

    Parameters
    ----------
    sizes:
        Community sizes; ``sum(sizes) = N`` and the class label of each node
        is its community.
    p_in / p_out:
        Within- and between-community edge probabilities (before degree
        correction, which preserves the expected edge count).
    num_features:
        Attribute dimensionality ``d``.
    feature_topics_per_class:
        Number of "topic words" assigned to each class; defaults to
        ``num_features // (2 * #classes)``.
    feature_active_in / feature_active_out:
        Bernoulli rates for topic words of the node's own class vs. other
        words — this plants the attribute homophily the paper relies on.
    degree_exponent:
        Pareto exponent for per-node degree propensities (heavy tail like
        real citation graphs).
    identity_features:
        Use the identity matrix instead of generated attributes (the
        paper's Polblogs convention).
    """
    sizes = list(sizes)
    if not sizes or any(s <= 0 for s in sizes):
        raise ValueError("community sizes must be positive")
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise ValueError("require 0 <= p_out <= p_in <= 1")
    n = int(sum(sizes))
    labels = np.repeat(np.arange(len(sizes)), sizes)

    # Degree propensities: unit-mean heavy-tailed weights.
    theta = rng.pareto(degree_exponent, size=n) + 1.0
    theta /= theta.mean()
    theta = np.clip(theta, 0.2, 6.0)

    adjacency = _sample_block_edges(labels, theta, p_in, p_out, rng)

    if identity_features:
        features = np.eye(n)
    else:
        features = topic_features(
            labels, num_features, rng,
            topics_per_class=feature_topics_per_class,
            active_in=feature_active_in, active_out=feature_active_out)

    return Graph(adjacency=adjacency, features=features, labels=labels,
                 name=name, metadata={"p_in": p_in, "p_out": p_out})


def _sample_block_edges(labels: np.ndarray, theta: np.ndarray,
                        p_in: float, p_out: float,
                        rng: np.random.Generator) -> sp.csr_matrix:
    """Sample edges with probability ``θᵢθⱼ·p_block`` per unordered pair.

    Works block-pair by block-pair so only candidate pairs are enumerated
    for moderate N; probabilities are clipped to [0, 1].
    """
    n = labels.size
    classes = np.unique(labels)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for a in classes:
        idx_a = np.flatnonzero(labels == a)
        for b in classes[classes >= a]:
            idx_b = np.flatnonzero(labels == b)
            p_block = p_in if a == b else p_out
            if p_block <= 0:
                continue
            probs = np.clip(
                np.outer(theta[idx_a], theta[idx_b]) * p_block, 0.0, 1.0)
            mask = rng.random(probs.shape) < probs
            if a == b:
                mask = np.triu(mask, k=1)
            r, c = np.nonzero(mask)
            rows.append(idx_a[r])
            cols.append(idx_b[c])
    if rows:
        row = np.concatenate(rows)
        col = np.concatenate(cols)
    else:
        row = col = np.empty(0, dtype=np.int64)
    data = np.ones(row.size)
    upper = sp.csr_matrix((data, (row, col)), shape=(n, n))
    upper = upper.maximum(upper.T)
    upper.setdiag(0)
    upper.eliminate_zeros()
    upper.data[:] = 1.0
    return upper


def sparse_dcsbm(num_nodes: int, num_communities: int,
                 rng: np.random.Generator, avg_degree: float = 10.0,
                 mixing: float = 0.15, degree_exponent: float = 2.5,
                 num_features: int = 0, name: str = "dcsbm") -> Graph:
    """Streamed degree-corrected SBM for 100k–1M-node graphs.

    :func:`attributed_sbm` enumerates every candidate node pair per block
    pair (a dense ``|a| × |b|`` Bernoulli matrix), which is quadratic in
    the community sizes and tops out around 10⁴ nodes.  This generator is
    linear in the *edge* count instead: it draws a Poisson number of
    edges per block pair from a fixed degree budget
    (``M = n · avg_degree / 2``, split ``1 − mixing`` within / ``mixing``
    between communities, blocks weighted by size), then places each
    edge's endpoints independently with probability proportional to the
    per-node degree propensity ``θ`` — the classic Poisson multigraph
    construction of the DC-SBM, collapsed to a simple graph by dropping
    self-pairs and duplicates.  No dense intermediate ever exists; the
    working set is a few int64 arrays of edge length and the final CSR.

    Features (``num_features > 0``) come from :func:`topic_features`;
    ``num_features = 0`` plants one *one-hot community indicator* per
    node instead of the identity matrix (which would be a dense ``n × n``
    allocation at this scale).
    """
    if num_nodes < 2 * num_communities:
        raise ValueError("need at least two nodes per community")
    if not 0.0 <= mixing < 1.0:
        raise ValueError("mixing must be in [0, 1)")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    n = int(num_nodes)
    k = int(num_communities)
    sizes = np.full(k, n // k, dtype=np.int64)
    sizes[:n % k] += 1
    labels = np.repeat(np.arange(k), sizes)
    offsets = np.concatenate(([0], np.cumsum(sizes)))

    theta = rng.pareto(degree_exponent, size=n) + 1.0
    theta = np.clip(theta / theta.mean(), 0.2, 6.0)
    # Endpoint distributions, normalised per community.
    probs = [theta[offsets[a]:offsets[a + 1]] for a in range(k)]
    probs = [p / p.sum() for p in probs]

    budget = n * avg_degree / 2.0
    share = sizes / n
    within = (1.0 - mixing) * budget * share
    cross_weight = np.outer(share, share)
    cross_mass = np.triu(cross_weight, k=1).sum()
    codes_chunks: list[np.ndarray] = []
    for a in range(k):
        for b in range(a, k):
            if a == b:
                mean = within[a]
            elif cross_mass > 0:
                mean = mixing * budget * cross_weight[a, b] / cross_mass
            else:
                mean = 0.0
            count = int(rng.poisson(mean))
            if count == 0:
                continue
            u = offsets[a] + rng.choice(sizes[a], size=count, p=probs[a])
            v = offsets[b] + rng.choice(sizes[b], size=count, p=probs[b])
            lo = np.minimum(u, v)
            hi = np.maximum(u, v)
            keep = lo != hi
            codes_chunks.append(lo[keep] * np.int64(n) + hi[keep])
    if codes_chunks:
        codes = np.unique(np.concatenate(codes_chunks))
    else:
        codes = np.empty(0, dtype=np.int64)
    row = codes // n
    col = codes - row * n
    data = np.ones(2 * codes.size, dtype=np.float64)
    adjacency = sp.csr_matrix(
        (data, (np.concatenate([row, col]), np.concatenate([col, row]))),
        shape=(n, n))

    if num_features > 0:
        if num_features < k:
            raise ValueError("need at least one feature per community")
        features = topic_features(labels, num_features, rng,
                                  topics_per_class=max(1, num_features
                                                       // (2 * k)))
    else:
        features = np.zeros((n, k), dtype=np.float64)
        features[np.arange(n), labels] = 1.0

    # The construction is symmetric, loop-free and binary by build;
    # skip the O(nnz) re-verification at million-node scale.
    return Graph(adjacency=adjacency, features=features, labels=labels,
                 name=name, validate="off",
                 metadata={"avg_degree": avg_degree, "mixing": mixing,
                           "generator": "sparse_dcsbm"})


def topic_features(labels: np.ndarray, num_features: int,
                   rng: np.random.Generator,
                   topics_per_class: int | None = None,
                   active_in: float = 0.18,
                   active_out: float = 0.01) -> np.ndarray:
    """Sparse binary bag-of-words features correlated with class labels."""
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1
    if topics_per_class is None:
        topics_per_class = max(2, num_features // (2 * num_classes))
    if topics_per_class * num_classes > num_features:
        raise ValueError("not enough features for the requested topics")

    permutation = rng.permutation(num_features)
    class_words = {
        c: permutation[c * topics_per_class:(c + 1) * topics_per_class]
        for c in range(num_classes)
    }
    features = (rng.random((labels.size, num_features)) < active_out)
    features = features.astype(np.float64)
    for c in range(num_classes):
        members = np.flatnonzero(labels == c)
        words = class_words[c]
        hits = rng.random((members.size, words.size)) < active_in
        features[np.ix_(members, words)] = np.maximum(
            features[np.ix_(members, words)], hits.astype(np.float64))
    # Guarantee no all-zero rows (every document has at least one word).
    empty = np.flatnonzero(features.sum(axis=1) == 0)
    for node in empty:
        features[node, rng.choice(class_words[labels[node]])] = 1.0
    return features


def lfr_like(num_nodes: int, rng: np.random.Generator,
             mixing: float = 0.2, avg_degree: float = 8.0,
             community_exponent: float = 1.5,
             min_community: int = 10, num_features: int = 0,
             name: str = "lfr") -> Graph:
    """LFR-flavoured benchmark: power-law community sizes + mixing μ.

    A lighter-weight cousin of the Lancichinetti–Fortunato–Radicchi
    benchmark: community sizes follow a truncated power law, each node
    spends ``1 − μ`` of its (heavy-tailed) degree inside its community,
    and features (when requested) echo the communities.  Used by the
    extension community-detection benchmarks where unequal, skewed
    community sizes stress the methods more than a planted partition.
    """
    if not 0.0 <= mixing < 1.0:
        raise ValueError("mixing must be in [0, 1)")
    if min_community * 2 > num_nodes:
        raise ValueError("num_nodes too small for the minimum community size")

    sizes: list[int] = []
    remaining = num_nodes
    while remaining > 0:
        draw = int(min_community * (rng.pareto(community_exponent) + 1.0))
        draw = min(max(draw, min_community), remaining)
        if remaining - draw < min_community and remaining != draw:
            draw = remaining  # absorb the tail into the last community
        sizes.append(draw)
        remaining -= draw

    mean_size = num_nodes / len(sizes)
    p_in = min(1.0, (1.0 - mixing) * avg_degree / max(mean_size - 1.0, 1.0))
    p_out = min(1.0, mixing * avg_degree / max(num_nodes - mean_size, 1.0))
    return attributed_sbm(
        sizes, p_in, p_out,
        num_features=max(num_features, len(sizes) * 4), rng=rng,
        identity_features=num_features == 0, name=name)


def planted_partition(num_communities: int, community_size: int,
                      p_in: float, p_out: float, rng: np.random.Generator,
                      num_features: int = 0, name: str = "planted") -> Graph:
    """Uniform-size planted-partition convenience wrapper."""
    sizes = [community_size] * num_communities
    identity = num_features == 0
    return attributed_sbm(
        sizes, p_in, p_out,
        num_features=max(num_features, num_communities * 4),
        rng=rng, identity_features=identity, name=name)
