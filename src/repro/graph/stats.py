"""Graph statistics used for dataset validation and experiment reports.

These are the quantities the calibration in :mod:`repro.graph.datasets`
promises to preserve: degree distribution shape, clustering, homophily,
and component structure.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["degree_histogram", "average_clustering", "homophily_index",
           "largest_component_fraction", "graph_summary"]


def degree_histogram(graph: Graph) -> np.ndarray:
    """Counts of nodes per degree, index = degree."""
    degrees = graph.degrees().astype(int)
    return np.bincount(degrees)


def average_clustering(graph: Graph, sample: int | None = None,
                       rng: np.random.Generator | None = None) -> float:
    """Mean local clustering coefficient (triangle density per node).

    ``sample`` limits the computation to a random node subset for large
    graphs.
    """
    adj = graph.adjacency
    n = graph.num_nodes
    nodes = np.arange(n)
    if sample is not None and sample < n:
        rng = rng or np.random.default_rng(0)
        nodes = rng.choice(n, size=sample, replace=False)
    coefficients = []
    for node in nodes:
        neighbours = adj[node].indices
        k = len(neighbours)
        if k < 2:
            coefficients.append(0.0)
            continue
        sub = adj[np.ix_(neighbours, neighbours)]
        links = sub.nnz / 2.0
        coefficients.append(2.0 * links / (k * (k - 1)))
    return float(np.mean(coefficients)) if coefficients else 0.0


def homophily_index(graph: Graph) -> float:
    """Fraction of edges joining same-label endpoints (edge homophily)."""
    if graph.labels is None:
        raise ValueError("homophily needs labels")
    edges = graph.edge_list()
    if len(edges) == 0:
        return 0.0
    labels = graph.labels
    return float(np.mean(labels[edges[:, 0]] == labels[edges[:, 1]]))


def largest_component_fraction(graph: Graph) -> float:
    """Fraction of nodes inside the largest connected component."""
    _, labels = sp.csgraph.connected_components(graph.adjacency,
                                                directed=False)
    counts = np.bincount(labels)
    return float(counts.max() / graph.num_nodes)


def graph_summary(graph: Graph) -> dict[str, float]:
    """One-line-per-statistic summary dict (used by reports and the CLI)."""
    summary = {
        "nodes": float(graph.num_nodes),
        "edges": float(graph.num_edges),
        "avg_degree": float(graph.degrees().mean()),
        "density": graph.density(),
        "clustering": average_clustering(graph, sample=500),
        "largest_component": largest_component_fraction(graph),
    }
    if graph.labels is not None:
        summary["classes"] = float(graph.num_classes)
        summary["homophily"] = homophily_index(graph)
    return summary
