"""Planetoid-style dataset splits (Kipf & Welling protocol).

The paper adopts the standard splits: a fixed number of training nodes per
class, then ``num_val`` validation and ``num_test`` test nodes drawn from
the remainder.
"""

from __future__ import annotations

import numpy as np

__all__ = ["planetoid_split"]


def planetoid_split(labels: np.ndarray, train_per_class: int,
                    num_val: int, num_test: int,
                    rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample disjoint train/val/test index arrays.

    Raises
    ------
    ValueError
        If any class has fewer than ``train_per_class`` members or the
        remainder cannot host the validation and test sets.
    """
    labels = np.asarray(labels)
    train: list[np.ndarray] = []
    for c in np.unique(labels):
        members = np.flatnonzero(labels == c)
        if members.size < train_per_class:
            raise ValueError(
                f"class {c} has only {members.size} nodes, "
                f"needs {train_per_class} for training")
        train.append(rng.choice(members, size=train_per_class, replace=False))
    train_idx = np.sort(np.concatenate(train))

    remainder = np.setdiff1d(np.arange(labels.size), train_idx)
    if remainder.size < num_val + num_test:
        raise ValueError(
            f"{remainder.size} nodes remain after training selection; "
            f"cannot host {num_val} validation + {num_test} test nodes")
    chosen = rng.choice(remainder, size=num_val + num_test, replace=False)
    val_idx = np.sort(chosen[:num_val])
    test_idx = np.sort(chosen[num_val:])
    return train_idx, val_idx, test_idx
