"""Save/load :class:`~repro.graph.graph.Graph` objects as ``.npz`` files."""

from __future__ import annotations

import os

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["save_graph", "load_graph"]


def save_graph(graph: Graph, path: str | os.PathLike) -> None:
    """Serialise ``graph`` (adjacency, features, labels, splits) to ``path``."""
    adj = graph.adjacency.tocoo()
    payload: dict[str, np.ndarray] = {
        "adj_row": adj.row, "adj_col": adj.col, "adj_data": adj.data,
        "num_nodes": np.array([graph.num_nodes]),
        "features": graph.features,
        "name": np.array([graph.name]),
    }
    for key in ("labels", "train_idx", "val_idx", "test_idx"):
        value = getattr(graph, key)
        if value is not None:
            payload[key] = value
    np.savez_compressed(path, **payload)


def load_graph(path: str | os.PathLike,
               validate: str | None = None) -> Graph:
    """Load a graph previously written by :func:`save_graph`.

    ``validate`` is the :class:`~repro.graph.graph.Graph` input-checking
    policy (``"raise"`` | ``"sanitize"`` | ``"off"``); files from
    untrusted or hand-edited sources fail loudly under the default
    instead of producing NaNs deep inside ``fit``.
    """
    with np.load(path, allow_pickle=False) as data:
        n = int(data["num_nodes"][0])
        adjacency = sp.csr_matrix(
            (data["adj_data"], (data["adj_row"], data["adj_col"])),
            shape=(n, n))
        kwargs = {}
        for key in ("labels", "train_idx", "val_idx", "test_idx"):
            if key in data:
                kwargs[key] = data[key]
        return Graph(adjacency=adjacency, features=data["features"],
                     name=str(data["name"][0]), validate=validate, **kwargs)
