"""Subgraph extraction utilities.

Used when inspecting attacks (the k-hop ball around a target node) and by
tests; kept separate from the immutable :class:`Graph` container.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["induced_subgraph", "k_hop_neighborhood", "k_hop_subgraph"]


def induced_subgraph(graph: Graph, nodes) -> tuple[Graph, np.ndarray]:
    """Subgraph on ``nodes``; returns ``(subgraph, node_mapping)``.

    ``node_mapping[i]`` is the original id of the subgraph's node ``i``.
    Labels are carried over; the train/val/test split is not (the split
    indices would be meaningless in the new numbering).
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size == 0:
        raise ValueError("cannot induce a subgraph on zero nodes")
    if nodes.min() < 0 or nodes.max() >= graph.num_nodes:
        raise ValueError("node ids out of range")
    adjacency = graph.adjacency[np.ix_(nodes, nodes)].tocsr()
    sub = Graph(
        adjacency=adjacency,
        features=graph.features[nodes],
        labels=graph.labels[nodes] if graph.labels is not None else None,
        name=f"{graph.name}-sub{nodes.size}",
        metadata={**graph.metadata, "parent": graph.name})
    return sub, nodes


def k_hop_neighborhood(graph: Graph, node: int, k: int) -> np.ndarray:
    """Node ids within ``k`` hops of ``node`` (including the node)."""
    if not 0 <= node < graph.num_nodes:
        raise ValueError("node id out of range")
    if k < 0:
        raise ValueError("k must be non-negative")
    frontier = {int(node)}
    visited = {int(node)}
    adjacency = graph.adjacency
    for _ in range(k):
        next_frontier: set[int] = set()
        for u in frontier:
            next_frontier.update(int(v) for v in adjacency[u].indices)
        next_frontier -= visited
        if not next_frontier:
            break
        visited |= next_frontier
        frontier = next_frontier
    return np.array(sorted(visited), dtype=np.int64)


def k_hop_subgraph(graph: Graph, node: int, k: int) -> tuple[Graph, np.ndarray]:
    """Induced subgraph on the ``k``-hop ball around ``node``."""
    return induced_subgraph(graph, k_hop_neighborhood(graph, node, k))
