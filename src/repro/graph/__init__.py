"""Graph substrate: containers, proximity, generators and datasets."""

from .datasets import DATASETS, DatasetSpec, load_dataset
from .generators import (attributed_sbm, lfr_like, planted_partition,
                         sparse_dcsbm, topic_features)
from .graph import Graph, edges_from_adjacency, normalized_adjacency
from .io import load_graph, save_graph
from .proximity import (high_order_proximity, katz_proximity,
                        modularity_degree, proximity_statistics)
from .splits import planetoid_split
from .stats import (average_clustering, degree_histogram, graph_summary,
                    homophily_index, largest_component_fraction)
from .subgraph import induced_subgraph, k_hop_neighborhood, k_hop_subgraph

__all__ = [
    "Graph", "normalized_adjacency", "edges_from_adjacency",
    "high_order_proximity", "katz_proximity", "modularity_degree",
    "proximity_statistics",
    "attributed_sbm", "planted_partition", "topic_features", "lfr_like",
    "sparse_dcsbm",
    "DATASETS", "DatasetSpec", "load_dataset",
    "planetoid_split", "save_graph", "load_graph",
    "degree_histogram", "average_clustering", "homophily_index",
    "largest_component_fraction", "graph_summary",
    "induced_subgraph", "k_hop_neighborhood", "k_hop_subgraph",
]
