"""Benchmark datasets calibrated to the paper's Table II.

No network access is available in this environment, so each dataset is a
deterministic synthetic attributed SBM whose headline statistics (node
count, edge count, class count, feature dimensionality, split sizes,
homophily level) match the public benchmark it stands in for:

========= ====== ====== ======= ===== ================
name        N      M    classes   d   train/val/test
========= ====== ====== ======= ===== ================
cora       2708   5429     7    1433   140/500/1000
citeseer   3327   4732     6    3703   120/500/1000
polblogs   1490  16715     2    (id)    40/500/950
pubmed    19717  44338     3     500    60/500/1000
========= ====== ====== ======= ===== ================

``load_dataset(name, scale=...)`` shrinks every count proportionally so the
full experiment grid stays laptop-fast; ``scale=1.0`` reproduces Table II
sizes exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from .generators import attributed_sbm
from .graph import Graph
from .splits import planetoid_split

__all__ = ["DatasetSpec", "DATASETS", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Target statistics for one synthetic benchmark dataset."""

    name: str
    num_nodes: int
    num_edges: int
    num_classes: int
    num_features: int            # 0 → identity features (Polblogs)
    train_per_class: int
    num_val: int
    num_test: int
    mixing: float                # fraction of inter-community edges (1 - homophily)
    class_proportions: tuple[float, ...]

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.num_edges / self.num_nodes


DATASETS: dict[str, DatasetSpec] = {
    "cora": DatasetSpec(
        name="cora", num_nodes=2708, num_edges=5429, num_classes=7,
        num_features=1433, train_per_class=20, num_val=500, num_test=1000,
        mixing=0.19,
        class_proportions=(0.30, 0.16, 0.15, 0.13, 0.11, 0.08, 0.07)),
    "citeseer": DatasetSpec(
        name="citeseer", num_nodes=3327, num_edges=4732, num_classes=6,
        num_features=3703, train_per_class=20, num_val=500, num_test=1000,
        mixing=0.26,
        class_proportions=(0.21, 0.20, 0.20, 0.18, 0.15, 0.06)),
    "polblogs": DatasetSpec(
        name="polblogs", num_nodes=1490, num_edges=16715, num_classes=2,
        num_features=0, train_per_class=20, num_val=500, num_test=950,
        mixing=0.09,
        class_proportions=(0.52, 0.48)),
    "pubmed": DatasetSpec(
        name="pubmed", num_nodes=19717, num_edges=44338, num_classes=3,
        num_features=500, train_per_class=20, num_val=500, num_test=1000,
        mixing=0.20,
        class_proportions=(0.40, 0.39, 0.21)),
}


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Generate a benchmark dataset.

    Parameters
    ----------
    name:
        One of ``cora``, ``citeseer``, ``polblogs``, ``pubmed``
        (case-insensitive).
    scale:
        Multiplier on node/edge/split counts; ``0.25`` gives a
        quarter-size graph with the same density and homophily, which is
        what the benchmark suite uses by default.
    seed:
        Seed for the generation RNG; the same ``(name, scale, seed)``
        triple always yields the identical graph.
    """
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = DATASETS[key]
    # zlib.crc32 is a stable hash; the built-in hash() is salted per
    # process and would silently break cross-run reproducibility.
    rng = np.random.default_rng([seed, zlib.crc32(key.encode())])

    n = max(spec.num_classes * 10, int(round(spec.num_nodes * scale)))
    sizes = _proportional_sizes(n, spec.class_proportions)
    avg_degree = spec.avg_degree
    mean_size = n / spec.num_classes
    p_in = min(1.0, (1.0 - spec.mixing) * avg_degree / max(mean_size - 1, 1))
    p_out = min(1.0, spec.mixing * avg_degree / max(n - mean_size, 1))

    num_features = spec.num_features
    if num_features:
        # Keep the feature matrix affordable at small scales but faithful at 1.0.
        num_features = max(spec.num_classes * 8,
                           int(round(num_features * min(1.0, max(scale, 0.25)))))

    graph = attributed_sbm(
        sizes=sizes, p_in=p_in, p_out=p_out,
        num_features=num_features or n, rng=rng,
        identity_features=spec.num_features == 0, name=key)

    train_per_class = max(5, int(round(spec.train_per_class * min(1.0, scale * 2))))
    num_val = max(20, int(round(spec.num_val * scale)))
    num_test = max(50, int(round(spec.num_test * scale)))
    # Shrink the evaluation pools if a small graph cannot host them.
    budget = n - train_per_class * spec.num_classes
    if num_val + num_test > budget:
        ratio = budget / (num_val + num_test)
        num_val = max(10, int(num_val * ratio) - 1)
        num_test = max(20, int(num_test * ratio) - 1)
    train_idx, val_idx, test_idx = planetoid_split(
        graph.labels, train_per_class, num_val, num_test, rng)

    return Graph(adjacency=graph.adjacency, features=graph.features,
                 labels=graph.labels, train_idx=train_idx, val_idx=val_idx,
                 test_idx=test_idx, name=key,
                 metadata={**graph.metadata, "scale": scale, "seed": seed,
                           "spec": spec})


def _proportional_sizes(n: int, proportions: tuple[float, ...]) -> list[int]:
    """Integer community sizes matching ``proportions`` and summing to n."""
    raw = np.asarray(proportions) * n
    sizes = np.maximum(1, np.floor(raw).astype(int))
    # Distribute the rounding remainder to the largest fractional parts.
    deficit = n - sizes.sum()
    order = np.argsort(raw - np.floor(raw))[::-1]
    for i in range(abs(int(deficit))):
        sizes[order[i % len(sizes)]] += 1 if deficit > 0 else -1
    return sizes.tolist()
