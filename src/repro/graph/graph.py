"""The attributed-network container used throughout the library.

A :class:`Graph` bundles the pieces of Definition 1 in the paper: the
symmetric adjacency matrix, the node feature matrix ``X`` and (optionally)
node labels plus a planetoid-style train/val/test split.  Instances are
treated as immutable; every mutation helper (adding attack edges, dropping
denoised edges, …) returns a new :class:`Graph` sharing the unchanged
arrays.
"""

from __future__ import annotations

import os
from dataclasses import InitVar, dataclass, field, replace
from typing import Iterable, Sequence

import networkx as nx
import numpy as np
import scipy.sparse as sp

__all__ = ["Graph", "normalized_adjacency", "edges_from_adjacency",
           "default_validate"]

_VALIDATE_MODES = ("raise", "sanitize", "off")


def default_validate() -> str:
    """Construction-time validation policy (``REPRO_VALIDATE``,
    default ``"raise"``)."""
    return os.environ.get("REPRO_VALIDATE", "raise")


def _validate_adjacency(adjacency: sp.spmatrix,
                        mode: str = "raise") -> sp.csr_matrix:
    adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be square")
    if mode == "off":
        adjacency.eliminate_zeros()
        return adjacency
    if mode == "sanitize":
        if adjacency.data.size and not np.isfinite(adjacency.data).all():
            adjacency.data[~np.isfinite(adjacency.data)] = 0.0
        adjacency = adjacency.maximum(adjacency.T).tocsr()
        adjacency.setdiag(0.0)
        if adjacency.data.size:
            adjacency.data[:] = (adjacency.data != 0.0).astype(np.float64)
        adjacency.eliminate_zeros()
        return adjacency
    if adjacency.data.size and not np.isfinite(adjacency.data).all():
        raise ValueError(
            "adjacency contains non-finite entries (NaN/inf); pass "
            "validate='sanitize' to drop them")
    if (adjacency != adjacency.T).nnz != 0:
        raise ValueError(
            "adjacency must be symmetric (undirected graphs only); pass "
            "validate='sanitize' to symmetrise with max(A, Aᵀ)")
    if adjacency.diagonal().any():
        raise ValueError("adjacency must not contain self-loops; they are "
                         "added during normalisation")
    data = adjacency.data
    if data.size and (np.any(data < 0) or np.any(data > 1)):
        raise ValueError("adjacency entries must be binary")
    adjacency.eliminate_zeros()
    return adjacency


@dataclass(frozen=True)
class Graph:
    """An undirected attributed network.

    Parameters
    ----------
    adjacency:
        ``N × N`` binary symmetric scipy sparse matrix without self-loops.
    features:
        ``N × d`` dense feature matrix ``X``; identity for plain graphs
        (the paper's Polblogs convention).
    labels:
        Optional integer class labels, shape ``(N,)``.
    train_idx / val_idx / test_idx:
        Optional node index arrays for the semi-supervised protocol.
    name:
        Human-readable dataset name.
    validate:
        Construction-time input checking: ``"raise"`` (the default —
        reject asymmetric/non-binary adjacency and non-finite features
        with a clear error instead of failing deep inside ``fit``),
        ``"sanitize"`` (symmetrise with ``max(A, Aᵀ)``, drop self-loops,
        binarise, zero non-finite values), or ``"off"`` (trust the
        caller; shape checks only).  Default from ``REPRO_VALIDATE``.
    """

    adjacency: sp.csr_matrix
    features: np.ndarray
    labels: np.ndarray | None = None
    train_idx: np.ndarray | None = None
    val_idx: np.ndarray | None = None
    test_idx: np.ndarray | None = None
    name: str = "graph"
    metadata: dict = field(default_factory=dict)
    validate: InitVar[str | None] = None

    def __post_init__(self, validate: str | None = None):
        mode = default_validate() if validate is None else validate
        if mode not in _VALIDATE_MODES:
            raise ValueError(f"validate must be one of {_VALIDATE_MODES}, "
                             f"got {mode!r}")
        object.__setattr__(self, "adjacency",
                           _validate_adjacency(self.adjacency, mode))
        features = np.asarray(self.features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if features.shape[0] != self.adjacency.shape[0]:
            raise ValueError(
                f"features have {features.shape[0]} rows for "
                f"{self.adjacency.shape[0]} nodes")
        if mode != "off" and not np.isfinite(features).all():
            if mode == "raise":
                bad = int((~np.isfinite(features)).sum())
                raise ValueError(
                    f"features contain {bad} non-finite value(s) "
                    f"(NaN/inf); pass validate='sanitize' to zero them "
                    f"or validate='off' to skip input checks")
            features = np.nan_to_num(features, nan=0.0, posinf=0.0,
                                     neginf=0.0)
        object.__setattr__(self, "features", features)
        if self.labels is not None:
            labels = np.asarray(self.labels)
            if labels.shape != (self.num_nodes,):
                raise ValueError("labels must be one integer per node")
            object.__setattr__(self, "labels", labels.astype(np.int64))

    # ------------------------------------------------------------------ #
    # Basic statistics                                                    #
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``M``."""
        return int(self.adjacency.nnz // 2)

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        if self.labels is None:
            raise ValueError(f"graph {self.name!r} has no labels")
        return int(self.labels.max()) + 1

    def degrees(self) -> np.ndarray:
        """Node degrees (no self-loops)."""
        return np.asarray(self.adjacency.sum(axis=1)).ravel()

    def density(self) -> float:
        n = self.num_nodes
        possible = n * (n - 1) / 2
        return self.num_edges / possible if possible else 0.0

    # ------------------------------------------------------------------ #
    # Edges                                                               #
    # ------------------------------------------------------------------ #
    def edge_list(self) -> np.ndarray:
        """Undirected edges as an ``(M, 2)`` array with ``u < v``."""
        coo = sp.triu(self.adjacency, k=1).tocoo()
        return np.column_stack([coo.row, coo.col])

    def edge_set(self) -> set[tuple[int, int]]:
        return {(int(u), int(v)) for u, v in self.edge_list()}

    def has_edge(self, u: int, v: int) -> bool:
        return bool(self.adjacency[u, v] != 0)

    # ------------------------------------------------------------------ #
    # Functional updates                                                  #
    # ------------------------------------------------------------------ #
    def with_adjacency(self, adjacency: sp.spmatrix, **meta) -> "Graph":
        """Return a copy with a replaced adjacency matrix."""
        metadata = {**self.metadata, **meta}
        return replace(self, adjacency=sp.csr_matrix(adjacency),
                       metadata=metadata)

    def with_features(self, features: np.ndarray) -> "Graph":
        return replace(self, features=np.asarray(features, dtype=np.float64))

    def with_labels(self, labels: np.ndarray) -> "Graph":
        return replace(self, labels=np.asarray(labels))

    def add_edges(self, edges: Iterable[Sequence[int]]) -> "Graph":
        """Return a copy with ``edges`` added (symmetrically)."""
        adj = self.adjacency.tolil(copy=True)
        for u, v in edges:
            if u == v:
                raise ValueError("self-loops are not allowed")
            adj[u, v] = 1.0
            adj[v, u] = 1.0
        return self.with_adjacency(adj.tocsr())

    def remove_edges(self, edges: Iterable[Sequence[int]]) -> "Graph":
        """Return a copy with ``edges`` removed (missing edges are ignored)."""
        adj = self.adjacency.tolil(copy=True)
        for u, v in edges:
            adj[u, v] = 0.0
            adj[v, u] = 0.0
        result = adj.tocsr()
        result.eliminate_zeros()
        return self.with_adjacency(result)

    def flip_edges(self, edges: Iterable[Sequence[int]]) -> "Graph":
        """Toggle each edge: present → removed, absent → added."""
        adj = self.adjacency.tolil(copy=True)
        for u, v in edges:
            if u == v:
                raise ValueError("self-loops are not allowed")
            value = 0.0 if adj[u, v] else 1.0
            adj[u, v] = value
            adj[v, u] = value
        result = adj.tocsr()
        result.eliminate_zeros()
        return self.with_adjacency(result)

    # ------------------------------------------------------------------ #
    # Interop                                                             #
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.Graph:
        g = nx.from_scipy_sparse_array(self.adjacency)
        if self.labels is not None:
            nx.set_node_attributes(
                g, {i: int(c) for i, c in enumerate(self.labels)}, "label")
        return g

    def copy(self) -> "Graph":
        return replace(self, adjacency=self.adjacency.copy(),
                       features=self.features.copy())

    def __repr__(self) -> str:
        return (f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges}, features={self.num_features})")


def normalized_adjacency(adjacency: sp.spmatrix,
                         self_loops: bool = True) -> sp.csr_matrix:
    """Symmetric GCN normalisation ``D^{-1/2} (A [+ I]) D^{-1/2}`` (Eq. 2)."""
    adj = sp.csr_matrix(adjacency, dtype=np.float64)
    if self_loops:
        adj = adj + sp.eye(adj.shape[0], format="csr")
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degrees)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d_inv = sp.diags(inv_sqrt)
    return (d_inv @ adj @ d_inv).tocsr()


def edges_from_adjacency(adjacency: sp.spmatrix) -> np.ndarray:
    """Undirected ``(M, 2)`` edge array of any symmetric sparse matrix."""
    coo = sp.triu(adjacency, k=1).tocoo()
    return np.column_stack([coo.row, coo.col])
