"""Strict-JSON serialisation shared by every ``--json`` surface.

``repro evaluate --json``, ``repro embed --json`` and the serving
layer's ``repro serve query --json`` / HTTP responses all emit records
that may contain floats computed from model output — which can be NaN
or ±inf (a degenerate metric, an empty community, a diverged fit).
Strict JSON has no token for those values, so every emitter funnels
through this module: :func:`json_sanitize` maps non-finite numbers to
``null`` recursively, and :func:`dumps` refuses (``allow_nan=False``)
to serialise anything that slipped past it — a non-finite value fails
loudly instead of printing ``NaN`` tokens no strict parser accepts.
"""

from __future__ import annotations

import json
import math

__all__ = ["json_sanitize", "dumps", "finite_or_none"]


def finite_or_none(value) -> float | None:
    """One scalar: ``float(value)``, or ``None`` when non-finite."""
    value = float(value)
    return value if math.isfinite(value) else None


def json_sanitize(value):
    """Recursively coerce ``value`` into strict-JSON-safe plain types.

    Non-finite floats become ``None``; numpy scalars and arrays become
    python scalars and lists (then sanitised); dict keys are stringified
    where needed; tuples/sets become lists.  Unknown objects fall back
    to ``str`` so a stray type can never break an output path.
    """
    if value is None or isinstance(value, (bool, str, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): json_sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [json_sanitize(v) for v in value]
    # numpy scalars expose item(); arrays expose tolist().
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return json_sanitize(value.item())
    if hasattr(value, "tolist"):
        return json_sanitize(value.tolist())
    return str(value)


def dumps(record, **kwargs) -> str:
    """Sanitise then serialise with ``allow_nan=False`` (strict JSON)."""
    return json.dumps(json_sanitize(record), allow_nan=False, **kwargs)
