"""Community-outlier seeding (Section V-C, following ONE).

Three outlier types are planted as *new* nodes appended to the graph, each
crafted so that neither its degree nor its attribute sparsity is trivially
abnormal (the paper's seeding requirement):

* **structural** — attributes copied from a normal member of class ``c``
  (looks normal attribute-wise) but edges wired uniformly across the whole
  graph, ignoring the community structure.
* **attribute** — edges wired like a normal member of class ``c``
  (respecting the empirical mixing rate) but attributes drawn from the
  global per-column marginal, destroying class correlation at matched
  sparsity.
* **combined** — edges of one class, attributes of a *different* class:
  each view alone looks normal, their combination does not.
* **mix** — one third of each type (the paper's 'Mix' column in Fig. 6).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph.graph import Graph

__all__ = ["seed_outliers", "OUTLIER_KINDS"]

OUTLIER_KINDS = ("structural", "attribute", "combined", "mix")


def seed_outliers(graph: Graph, rng: np.random.Generator,
                  fraction: float = 0.05,
                  kind: str = "mix") -> tuple[Graph, np.ndarray]:
    """Plant outlier nodes into ``graph``.

    Returns ``(augmented_graph, outlier_mask)`` where the mask flags the
    appended outlier nodes (all original nodes are False).
    """
    if kind not in OUTLIER_KINDS:
        raise ValueError(f"kind must be one of {OUTLIER_KINDS}")
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    if graph.labels is None:
        raise ValueError("outlier seeding needs class labels")

    num_outliers = max(1, int(round(graph.num_nodes * fraction)))
    if kind == "mix":
        kinds = np.array(["structural", "attribute", "combined"])[
            np.arange(num_outliers) % 3]
        rng.shuffle(kinds)
    else:
        kinds = np.array([kind] * num_outliers)

    n = graph.num_nodes
    degrees = graph.degrees().astype(int)
    degrees = degrees[degrees > 0]
    mixing = _empirical_mixing(graph)
    labels = graph.labels
    classes = np.unique(labels)

    new_rows: list[np.ndarray] = []
    new_features: list[np.ndarray] = []
    new_labels: list[int] = []
    for i, this_kind in enumerate(kinds):
        node_id = n + i
        c_struct = int(rng.choice(classes))
        degree = int(np.clip(rng.choice(degrees), 2, None))

        if this_kind == "structural":
            neighbours = _uniform_neighbours(n, degree, rng)
            features = _class_like_features(graph, c_struct, rng)
            new_labels.append(c_struct)
        elif this_kind == "attribute":
            neighbours = _class_like_neighbours(labels, c_struct, mixing,
                                                degree, rng)
            features = _marginal_features(graph, rng)
            new_labels.append(c_struct)
        else:  # combined
            c_attr = int(rng.choice(classes[classes != c_struct])) \
                if len(classes) > 1 else c_struct
            neighbours = _class_like_neighbours(labels, c_struct, mixing,
                                                degree, rng)
            features = _class_like_features(graph, c_attr, rng)
            new_labels.append(c_struct)
        new_rows.append(np.unique(neighbours))
        new_features.append(features)

    total = n + num_outliers
    adj = sp.lil_matrix((total, total))
    adj[:n, :n] = graph.adjacency
    for i, neighbours in enumerate(new_rows):
        adj[n + i, neighbours] = 1.0
        adj[neighbours, n + i] = 1.0
    features = np.vstack([graph.features, np.array(new_features)])
    labels_out = np.concatenate([labels, np.array(new_labels)])
    mask = np.zeros(total, dtype=bool)
    mask[n:] = True

    augmented = Graph(
        adjacency=adj.tocsr(), features=features, labels=labels_out,
        train_idx=graph.train_idx, val_idx=graph.val_idx,
        test_idx=graph.test_idx, name=graph.name,
        metadata={**graph.metadata, "outliers": kind, "fraction": fraction})
    return augmented, mask


def _empirical_mixing(graph: Graph) -> float:
    """Fraction of edges crossing community boundaries."""
    edges = graph.edge_list()
    if len(edges) == 0:
        return 0.5
    labels = graph.labels
    return float(np.mean(labels[edges[:, 0]] != labels[edges[:, 1]]))


def _uniform_neighbours(n: int, degree: int, rng: np.random.Generator) -> np.ndarray:
    return rng.choice(n, size=min(degree, n), replace=False)


def _class_like_neighbours(labels: np.ndarray, c: int, mixing: float,
                           degree: int, rng: np.random.Generator) -> np.ndarray:
    members = np.flatnonzero(labels == c)
    others = np.flatnonzero(labels != c)
    n_out = int(round(degree * mixing))
    n_in = degree - n_out
    chosen = [rng.choice(members, size=min(n_in, members.size), replace=False)]
    if n_out and others.size:
        chosen.append(rng.choice(others, size=min(n_out, others.size),
                                 replace=False))
    return np.concatenate(chosen)


def _class_like_features(graph: Graph, c: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Copy a random member's attributes, resampling a few entries."""
    members = np.flatnonzero(graph.labels == c)
    template = graph.features[rng.choice(members)].copy()
    flip = rng.random(template.size) < 0.02
    column_means = graph.features.mean(axis=0)
    template[flip] = (rng.random(flip.sum()) < column_means[flip]).astype(float)
    return template


def _marginal_features(graph: Graph, rng: np.random.Generator) -> np.ndarray:
    """Sample each attribute independently from its global marginal."""
    column_means = graph.features.mean(axis=0)
    return (rng.random(column_means.size) < column_means).astype(float)
