"""Outlier seeding for the anomaly-detection experiments."""

from .seeding import OUTLIER_KINDS, seed_outliers

__all__ = ["seed_outliers", "OUTLIER_KINDS"]
