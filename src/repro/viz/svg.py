"""Dependency-free SVG chart rendering.

matplotlib is not available in this environment, so the figures of the
paper (defense-score curves, accuracy-vs-perturbation lines, t-SNE
scatter panels) are rendered as standalone SVG files by this module.
Only the two chart shapes the benchmarks need are implemented: multi-
series line charts and labelled scatter plots.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["line_chart", "scatter_chart", "save_svg"]

_PALETTE = ["#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
            "#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0"]

_WIDTH, _HEIGHT = 640, 420
_MARGIN = {"left": 64, "right": 150, "top": 36, "bottom": 48}


def line_chart(series: dict[str, tuple[np.ndarray, np.ndarray]],
               title: str = "", x_label: str = "", y_label: str = "") -> str:
    """Render ``{name: (x_values, y_values)}`` as a multi-line SVG chart."""
    if not series:
        raise ValueError("need at least one series")
    cleaned = {}
    for name, (x, y) in series.items():
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.size == 0:
            raise ValueError(f"series {name!r} has mismatched or empty data")
        cleaned[name] = (x, y)

    all_x = np.concatenate([x for x, _ in cleaned.values()])
    all_y = np.concatenate([y for _, y in cleaned.values()])
    x_scale = _Scale(all_x.min(), all_x.max(),
                     _MARGIN["left"], _WIDTH - _MARGIN["right"])
    y_scale = _Scale(all_y.min(), all_y.max(),
                     _HEIGHT - _MARGIN["bottom"], _MARGIN["top"])

    parts = [_header(), _axes(x_scale, y_scale, title, x_label, y_label)]
    for i, (name, (x, y)) in enumerate(cleaned.items()):
        colour = _PALETTE[i % len(_PALETTE)]
        points = " ".join(
            f"{x_scale(a):.1f},{y_scale(b):.1f}" for a, b in zip(x, y))
        parts.append(f'<polyline fill="none" stroke="{colour}" '
                     f'stroke-width="2" points="{points}"/>')
        for a, b in zip(x, y):
            parts.append(f'<circle cx="{x_scale(a):.1f}" '
                         f'cy="{y_scale(b):.1f}" r="3" fill="{colour}"/>')
        legend_y = _MARGIN["top"] + 18 * i
        legend_x = _WIDTH - _MARGIN["right"] + 12
        parts.append(f'<rect x="{legend_x}" y="{legend_y - 9}" width="12" '
                     f'height="12" fill="{colour}"/>')
        parts.append(f'<text x="{legend_x + 18}" y="{legend_y + 2}" '
                     f'font-size="12">{_escape(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def scatter_chart(points: np.ndarray, labels: np.ndarray | None = None,
                  title: str = "") -> str:
    """Render 2-D ``points`` (optionally coloured by integer labels)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be an (N, 2) array")
    if labels is None:
        labels = np.zeros(len(points), dtype=int)
    labels = np.asarray(labels)

    x_scale = _Scale(points[:, 0].min(), points[:, 0].max(),
                     _MARGIN["left"], _WIDTH - _MARGIN["right"])
    y_scale = _Scale(points[:, 1].min(), points[:, 1].max(),
                     _HEIGHT - _MARGIN["bottom"], _MARGIN["top"])

    parts = [_header()]
    if title:
        parts.append(f'<text x="{_WIDTH / 2}" y="20" text-anchor="middle" '
                     f'font-size="14">{_escape(title)}</text>')
    for (x, y), label in zip(points, labels):
        colour = _PALETTE[int(label) % len(_PALETTE)]
        parts.append(f'<circle cx="{x_scale(x):.1f}" cy="{y_scale(y):.1f}" '
                     f'r="3" fill="{colour}" fill-opacity="0.75"/>')
    for label in np.unique(labels):
        colour = _PALETTE[int(label) % len(_PALETTE)]
        legend_y = _MARGIN["top"] + 18 * int(label)
        legend_x = _WIDTH - _MARGIN["right"] + 12
        parts.append(f'<rect x="{legend_x}" y="{legend_y - 9}" width="12" '
                     f'height="12" fill="{colour}"/>')
        parts.append(f'<text x="{legend_x + 18}" y="{legend_y + 2}" '
                     f'font-size="12">class {int(label)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg)
    return path


# ---------------------------------------------------------------------- #
class _Scale:
    """Affine map from data space to pixel space (degenerates safely)."""

    def __init__(self, lo: float, hi: float, pixel_lo: float, pixel_hi: float):
        self.lo = lo
        self.span = (hi - lo) or 1.0
        self.pixel_lo = pixel_lo
        self.pixel_span = pixel_hi - pixel_lo
        self.hi = hi

    def __call__(self, value: float) -> float:
        return self.pixel_lo + (value - self.lo) / self.span * self.pixel_span


def _header() -> str:
    return (f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
            f'height="{_HEIGHT}" font-family="sans-serif">'
            f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>')


def _axes(x_scale: _Scale, y_scale: _Scale, title: str,
          x_label: str, y_label: str) -> str:
    left, bottom = _MARGIN["left"], _HEIGHT - _MARGIN["bottom"]
    right, top = _WIDTH - _MARGIN["right"], _MARGIN["top"]
    parts = [
        f'<line x1="{left}" y1="{bottom}" x2="{right}" y2="{bottom}" '
        f'stroke="#333"/>',
        f'<line x1="{left}" y1="{bottom}" x2="{left}" y2="{top}" '
        f'stroke="#333"/>',
    ]
    if title:
        parts.append(f'<text x="{(left + right) / 2}" y="20" '
                     f'text-anchor="middle" font-size="14">'
                     f'{_escape(title)}</text>')
    if x_label:
        parts.append(f'<text x="{(left + right) / 2}" y="{_HEIGHT - 10}" '
                     f'text-anchor="middle" font-size="12">'
                     f'{_escape(x_label)}</text>')
    if y_label:
        parts.append(f'<text x="16" y="{(top + bottom) / 2}" font-size="12" '
                     f'transform="rotate(-90 16 {(top + bottom) / 2})" '
                     f'text-anchor="middle">{_escape(y_label)}</text>')
    # Min/max tick labels on both axes.
    parts.append(f'<text x="{left}" y="{bottom + 16}" font-size="11" '
                 f'text-anchor="middle">{x_scale.lo:.2g}</text>')
    parts.append(f'<text x="{right}" y="{bottom + 16}" font-size="11" '
                 f'text-anchor="middle">{x_scale.hi:.2g}</text>')
    parts.append(f'<text x="{left - 6}" y="{bottom + 4}" font-size="11" '
                 f'text-anchor="end">{y_scale.lo:.3g}</text>')
    parts.append(f'<text x="{left - 6}" y="{top + 4}" font-size="11" '
                 f'text-anchor="end">{y_scale.hi:.3g}</text>')
    return "\n".join(parts)


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))
