"""Visualisation helpers: t-SNE (Fig. 8) and dependency-free SVG charts."""

from .svg import line_chart, save_svg, scatter_chart
from .tsne import tsne

__all__ = ["tsne", "line_chart", "scatter_chart", "save_svg"]
