"""Exact t-SNE (van der Maaten & Hinton, 2008) for Fig. 8 visualisations.

O(N²) implementation with the standard tricks: binary-searched
perplexity calibration, early exaggeration, and momentum gradient descent.
Adequate for the few-thousand-node graphs of the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tsne"]


def tsne(points: np.ndarray, n_components: int = 2, perplexity: float = 30.0,
         learning_rate: float = 200.0, n_iter: int = 500,
         early_exaggeration: float = 12.0, seed: int = 0) -> np.ndarray:
    """Embed ``points`` into ``n_components`` dimensions.

    Returns an ``(N, n_components)`` array of coordinates.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 5:
        raise ValueError("t-SNE needs at least a handful of points")
    perplexity = min(perplexity, (n - 1) / 3.0)

    p = _joint_probabilities(points, perplexity)
    rng = np.random.default_rng(seed)
    y = rng.normal(scale=1e-4, size=(n, n_components))
    velocity = np.zeros_like(y)
    gains = np.ones_like(y)

    exaggeration_until = min(250, n_iter // 2)
    p_run = p * early_exaggeration
    momentum = 0.5
    for iteration in range(n_iter):
        if iteration == exaggeration_until:
            p_run = p
            momentum = 0.8
        grad = _gradient(p_run, y)
        gains = np.where(np.sign(grad) != np.sign(velocity),
                         gains + 0.2, gains * 0.8)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * grad
        y += velocity
        y -= y.mean(axis=0)
    return y


def _joint_probabilities(points: np.ndarray, perplexity: float) -> np.ndarray:
    distances = _pairwise_sq(points)
    n = points.shape[0]
    conditional = np.zeros((n, n))
    target_entropy = np.log(perplexity)
    for i in range(n):
        conditional[i] = _calibrate_row(distances[i], i, target_entropy)
    joint = (conditional + conditional.T) / (2.0 * n)
    return np.maximum(joint, 1e-12)


def _calibrate_row(row_distances: np.ndarray, i: int,
                   target_entropy: float) -> np.ndarray:
    beta_low, beta_high = 0.0, np.inf
    beta = 1.0
    probs = np.zeros_like(row_distances)
    for _ in range(50):
        probs = np.exp(-row_distances * beta)
        probs[i] = 0.0
        total = probs.sum()
        if total <= 0:
            beta /= 2.0
            continue
        probs /= total
        positive = probs[probs > 0]
        entropy = -np.sum(positive * np.log(positive))
        error = entropy - target_entropy
        if abs(error) < 1e-5:
            break
        if error > 0:
            beta_low = beta
            beta = beta * 2.0 if not np.isfinite(beta_high) else (beta + beta_high) / 2.0
        else:
            beta_high = beta
            beta = (beta + beta_low) / 2.0
    return probs


def _gradient(p: np.ndarray, y: np.ndarray) -> np.ndarray:
    distances = _pairwise_sq(y)
    inv = 1.0 / (1.0 + distances)
    np.fill_diagonal(inv, 0.0)
    q = np.maximum(inv / inv.sum(), 1e-12)
    pq = (p - q) * inv
    grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)
    return grad


def _pairwise_sq(points: np.ndarray) -> np.ndarray:
    sq = np.sum(points ** 2, axis=1)
    distances = sq[:, None] - 2.0 * points @ points.T + sq[None, :]
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)
