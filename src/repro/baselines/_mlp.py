"""Small MLP/autoencoder building blocks shared by the AE-based baselines."""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor

__all__ = ["MLP", "Autoencoder"]


class MLP(Module):
    """Fully connected stack with LeakyReLU between layers."""

    def __init__(self, dims: list[int], rng: np.random.Generator,
                 final_activation: bool = False):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output widths")
        self.layers = [Linear(dims[i], dims[i + 1], rng)
                       for i in range(len(dims) - 1)]
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i != last or self.final_activation:
                x = x.leaky_relu(0.01)
        return x


class Autoencoder(Module):
    """Symmetric encoder/decoder MLP pair around a bottleneck."""

    def __init__(self, input_dim: int, hidden: int, bottleneck: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = MLP([input_dim, hidden, bottleneck], rng)
        self.decoder = MLP([bottleneck, hidden, input_dim], rng)

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        z = self.encoder(x)
        return z, self.decoder(z)
