"""AnomalyDAE (Fan et al., 2020) — dual autoencoders for anomaly detection.

A structure autoencoder embeds nodes from the adjacency (here through a
GCN over attributes, as in the original's attention encoder) and an
attribute autoencoder embeds the feature matrix; structure is decoded as
``σ(Z_s Z_sᵀ)`` and attributes as ``Z_s Z_aᵀ``.  Anomaly scores combine
both reconstruction errors with weight ``alpha``; ``theta`` and ``eta``
up-weight the *non-zero* entries of the adjacency and attribute matrices
(the paper sets (α, θ, η) = (0.3, 90, 5))."""

from __future__ import annotations

import numpy as np

from ..core.encoder import GCNEncoder
from ..graph.graph import Graph, normalized_adjacency
from ..nn import Adam, Tensor, no_grad
from ._mlp import MLP
from .base import EmbeddingMethod, register

__all__ = ["AnomalyDAE"]


@register("anomalydae")
class AnomalyDAE(EmbeddingMethod):
    """Dual AE with weighted reconstruction, per the paper's (0.3, 90, 5)."""

    def __init__(self, dim: int = 32, hidden: int = 64, epochs: int = 180,
                 lr: float = 0.005, alpha: float = 0.3, theta: float = 90.0,
                 eta: float = 5.0, seed: int = 0):
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.alpha = alpha
        self.theta = theta
        self.eta = eta
        self.seed = seed
        self._nets = None
        self._graph: Graph | None = None
        self._scores: np.ndarray | None = None

    def fit(self, graph: Graph) -> "AnomalyDAE":
        rng = np.random.default_rng(self.seed)
        struct_enc = GCNEncoder(graph.num_features, (self.hidden, self.dim),
                                rng=rng)
        attr_enc = MLP([graph.num_nodes, self.hidden, self.dim], rng)
        self._nets = (struct_enc, attr_enc)
        self._graph = graph

        adj_norm = normalized_adjacency(graph.adjacency)
        features = Tensor(graph.features)
        adj_dense = graph.adjacency.toarray() + np.eye(graph.num_nodes)
        # Attribute AE takes X columns (attribute i described by its nodes).
        attr_input = Tensor(graph.features.T)

        struct_weight = np.where(adj_dense > 0, self.theta, 1.0)
        attr_weight = np.where(graph.features > 0, self.eta, 1.0)

        params = list(struct_enc.parameters()) + list(attr_enc.parameters())
        optimizer = Adam(params, lr=self.lr)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            z_s = struct_enc(features, adj_norm)
            z_a = attr_enc(attr_input)  # (d, dim)
            struct_rec = (z_s @ z_s.T).sigmoid()
            attr_rec = z_s @ z_a.T
            struct_err = ((struct_rec - Tensor(adj_dense)) ** 2
                          * Tensor(struct_weight))
            attr_err = ((attr_rec - Tensor(graph.features)) ** 2
                        * Tensor(attr_weight))
            loss = (self.alpha * struct_err.mean()
                    + (1.0 - self.alpha) * attr_err.mean())
            loss.backward()
            optimizer.step()

        with no_grad():
            z_s = struct_enc(features, adj_norm)
            z_a = attr_enc(attr_input)
            struct_rec = (z_s @ z_s.T).sigmoid().data
            attr_rec = (z_s @ z_a.T).data
        struct_err = np.linalg.norm(
            (struct_rec - adj_dense) * np.sqrt(struct_weight), axis=1)
        attr_err = np.linalg.norm(
            (attr_rec - graph.features) * np.sqrt(attr_weight), axis=1)
        self._scores = self.alpha * struct_err + (1.0 - self.alpha) * attr_err
        self._embedding = z_s.data.copy()
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._nets is None:
            raise RuntimeError("call fit() first")
        if graph is None or graph is self._graph:
            return self._embedding.copy()
        struct_enc, _ = self._nets
        with no_grad():
            z = struct_enc(Tensor(graph.features),
                           normalized_adjacency(graph.adjacency))
        return z.data.copy()

    def anomaly_scores(self, graph: Graph | None = None) -> np.ndarray:
        if self._scores is None:
            raise RuntimeError("call fit() first")
        return self._scores.copy()
