"""CFANE (Pan et al., 2021) — Cross-Fusion Attributed Network Embedding.

Two parallel streams encode the structural view (high-order proximity
rows) and the attribute view; after every layer a cross-fusion step mixes
the two hidden states so information flows between views.  Training
reconstructs both inputs from the fused bottleneck.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.proximity import high_order_proximity
from ..nn import Adam, Linear, Module, Tensor, functional as F, no_grad
from .base import EmbeddingMethod, register

__all__ = ["CFANE"]


class _CrossFusionEncoder(Module):
    """Parallel Linear streams with additive cross-fusion after each layer."""

    def __init__(self, struct_dim: int, attr_dim: int, widths: list[int],
                 rng: np.random.Generator, mix: float = 0.3):
        super().__init__()
        self.mix = mix
        dims_s = [struct_dim, *widths]
        dims_a = [attr_dim, *widths]
        self.struct_layers = [Linear(dims_s[i], dims_s[i + 1], rng)
                              for i in range(len(widths))]
        self.attr_layers = [Linear(dims_a[i], dims_a[i + 1], rng)
                            for i in range(len(widths))]

    def forward(self, x_s: Tensor, x_a: Tensor) -> tuple[Tensor, Tensor]:
        h_s, h_a = x_s, x_a
        for layer_s, layer_a in zip(self.struct_layers, self.attr_layers):
            h_s = layer_s(h_s).leaky_relu(0.01)
            h_a = layer_a(h_a).leaky_relu(0.01)
            fused_s = h_s * (1.0 - self.mix) + h_a * self.mix
            fused_a = h_a * (1.0 - self.mix) + h_s * self.mix
            h_s, h_a = fused_s, fused_a
        return h_s, h_a


@register("cfane")
class CFANE(EmbeddingMethod):
    """Cross-fusion dual-stream encoder with joint reconstruction."""

    def __init__(self, dim: int = 32, hidden: int = 64, epochs: int = 120,
                 lr: float = 0.005, mix: float = 0.3, order: int = 2,
                 seed: int = 0):
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.mix = mix
        self.order = order
        self.seed = seed
        self._nets = None
        self._graph: Graph | None = None

    def fit(self, graph: Graph) -> "CFANE":
        rng = np.random.default_rng(self.seed)
        structure = high_order_proximity(graph.adjacency,
                                         order=self.order).toarray()
        encoder = _CrossFusionEncoder(graph.num_nodes, graph.num_features,
                                      [self.hidden, self.dim], rng, self.mix)
        dec_struct = Linear(2 * self.dim, graph.num_nodes, rng)
        dec_attr = Linear(2 * self.dim, graph.num_features, rng)
        self._nets = (encoder, dec_struct, dec_attr)
        self._graph = graph
        self._structure = structure

        from ..nn import concat
        x_s = Tensor(structure)
        x_a = Tensor(graph.features)
        params = (list(encoder.parameters()) + list(dec_struct.parameters())
                  + list(dec_attr.parameters()))
        optimizer = Adam(params, lr=self.lr)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            h_s, h_a = encoder(x_s, x_a)
            z = concat([h_s, h_a], axis=1)
            loss = (F.mse_loss(dec_struct(z), structure)
                    + F.mse_loss(dec_attr(z), graph.features))
            loss.backward()
            optimizer.step()
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._nets is None:
            raise RuntimeError("call fit() first")
        encoder = self._nets[0]
        if graph is None or graph is self._graph:
            structure = self._structure
            features = self._graph.features
        else:
            structure = high_order_proximity(graph.adjacency,
                                             order=self.order).toarray()
            features = graph.features
        with no_grad():
            h_s, h_a = encoder(Tensor(structure), Tensor(features))
        return np.hstack([h_s.data, h_a.data])
