"""DeepWalk (Perozzi et al., 2014).

Uniform random walks feed a skip-gram model trained with negative
sampling (SGNS).  Entirely numpy: walks are generated with CSR row
lookups and the SGNS updates are mini-batched outer products.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph.graph import Graph
from .base import EmbeddingMethod, register

__all__ = ["DeepWalk", "random_walks", "SkipGram"]


def random_walks(adjacency: sp.csr_matrix, walks_per_node: int,
                 walk_length: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random walks, one row per walk.

    Walks stop early at isolated nodes; such rows are padded by repeating
    the last node (harmless for skip-gram windows).
    """
    n = adjacency.shape[0]
    indptr, indices = adjacency.indptr, adjacency.indices
    walks = np.empty((n * walks_per_node, walk_length), dtype=np.int64)
    row = 0
    for _ in range(walks_per_node):
        order = rng.permutation(n)
        for start in order:
            current = start
            walks[row, 0] = current
            for step in range(1, walk_length):
                lo, hi = indptr[current], indptr[current + 1]
                if hi > lo:
                    current = indices[rng.integers(lo, hi)]
                walks[row, step] = current
            row += 1
    return walks


class SkipGram:
    """Skip-gram with negative sampling over integer token sequences."""

    def __init__(self, num_tokens: int, dim: int, window: int = 5,
                 negatives: int = 5, lr: float = 0.2, epochs: int = 5,
                 seed: int = 0, batch_size: int = 1024):
        self.num_tokens = num_tokens
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        scale = 0.5 / dim
        self.in_vectors = self.rng.uniform(-scale, scale, (num_tokens, dim))
        self.out_vectors = np.zeros((num_tokens, dim))

    def train(self, sequences: np.ndarray,
              noise_distribution: np.ndarray | None = None) -> None:
        if noise_distribution is None:
            counts = np.bincount(sequences.ravel(), minlength=self.num_tokens)
            noise_distribution = counts.astype(np.float64) ** 0.75
        noise_distribution = noise_distribution / noise_distribution.sum()
        centers, contexts = self._pairs(sequences)
        order = self.rng.permutation(len(centers))
        centers, contexts = centers[order], contexts[order]
        for epoch in range(self.epochs):
            lr = self.lr * (1.0 - epoch / max(self.epochs, 1)) + 1e-4
            self._sgns_epoch(centers, contexts, noise_distribution, lr)

    def _pairs(self, sequences: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        centers, contexts = [], []
        length = sequences.shape[1]
        for offset in range(1, self.window + 1):
            if offset >= length:
                break
            left = sequences[:, :-offset].ravel()
            right = sequences[:, offset:].ravel()
            centers.append(left)
            contexts.append(right)
            centers.append(right)
            contexts.append(left)
        return np.concatenate(centers), np.concatenate(contexts)

    def _sgns_epoch(self, centers, contexts, noise, lr,
                    batch_size: int | None = None) -> None:
        batch_size = batch_size or self.batch_size
        num_pairs = len(centers)
        for start in range(0, num_pairs, batch_size):
            c = centers[start:start + batch_size]
            o = contexts[start:start + batch_size]
            negatives = self.rng.choice(
                self.num_tokens, size=(len(c), self.negatives), p=noise)
            v_c = self.in_vectors[c]                      # (b, d)
            u_o = self.out_vectors[o]                     # (b, d)
            u_n = self.out_vectors[negatives]             # (b, k, d)

            pos_inner = np.clip(np.sum(v_c * u_o, axis=1), -10.0, 10.0)
            neg_inner = np.clip(np.einsum("bd,bkd->bk", v_c, u_n),
                                -10.0, 10.0)
            pos_score = 1.0 / (1.0 + np.exp(-pos_inner))
            neg_score = 1.0 / (1.0 + np.exp(-neg_inner))

            grad_pos = (pos_score - 1.0)[:, None]          # (b, 1)
            grad_c = grad_pos * u_o + np.einsum("bk,bkd->bd", neg_score, u_n)
            grad_o = grad_pos * v_c
            grad_n = neg_score[..., None] * v_c[:, None, :]

            # A token repeated r times in the batch would receive r stale
            # updates through add.at — an effective learning rate of r·lr
            # that diverges on small vocabularies.  Normalising each
            # token's accumulated gradient by its occurrence count keeps
            # the per-token step at lr, approximating sequential SGD.
            self._scatter_mean(self.in_vectors, c, -lr * grad_c)
            self._scatter_mean(self.out_vectors, o, -lr * grad_o)
            self._scatter_mean(self.out_vectors, negatives.ravel(),
                               -lr * grad_n.reshape(-1, self.dim))

    def _scatter_mean(self, table: np.ndarray, index: np.ndarray,
                      updates: np.ndarray) -> None:
        counts = np.bincount(index, minlength=table.shape[0])
        accumulated = np.zeros_like(table)
        np.add.at(accumulated, index, updates)
        touched = counts > 0
        table[touched] += accumulated[touched] / counts[touched, None]


@register("deepwalk")
class DeepWalk(EmbeddingMethod):
    """DeepWalk with SGNS.

    Parameters follow the original defaults, scaled down for CPU budgets:
    10→``walks_per_node`` walks of length 40→``walk_length``.
    """

    def __init__(self, dim: int = 64, walks_per_node: int = 5,
                 walk_length: int = 20, window: int = 5, negatives: int = 5,
                 epochs: int = 5, seed: int = 0):
        self.dim = dim
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.seed = seed
        self._embedding: np.ndarray | None = None

    def fit(self, graph: Graph) -> "DeepWalk":
        rng = np.random.default_rng(self.seed)
        walks = random_walks(graph.adjacency, self.walks_per_node,
                             self.walk_length, rng)
        model = SkipGram(graph.num_nodes, self.dim, window=self.window,
                         negatives=self.negatives, epochs=self.epochs,
                         seed=self.seed)
        model.train(walks)
        self._embedding = model.in_vectors
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._embedding is None:
            raise RuntimeError("call fit() first")
        return self._embedding.copy()
