"""Semi-supervised classifiers of Table III: GCN, GAT and RGCN.

All three train on the labelled split with cross-entropy, select weights on
validation accuracy, and predict labels directly (no probe).
"""

from __future__ import annotations

import numpy as np

from ..core.encoder import GCNEncoder
from ..graph.graph import Graph, normalized_adjacency
from ..nn import (Adam, GCNConv, Linear, Module, Parameter, Tensor,
                  functional as F, init, no_grad)
from .base import SupervisedMethod, register

__all__ = ["GCNClassifier", "GATClassifier", "RGCNClassifier"]


class _SupervisedBase(SupervisedMethod):
    def __init__(self, hidden: int = 32, epochs: int = 150, lr: float = 0.01,
                 weight_decay: float = 5e-4, seed: int = 0):
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.weight_decay = weight_decay
        self.seed = seed
        self.model: Module | None = None
        self._graph: Graph | None = None

    def _build(self, graph: Graph, rng: np.random.Generator) -> Module:
        raise NotImplementedError

    def _logits(self, graph: Graph) -> Tensor:
        raise NotImplementedError

    def fit(self, graph: Graph):
        if graph.labels is None or graph.train_idx is None:
            raise ValueError("supervised training needs labels and a split")
        rng = np.random.default_rng(self.seed)
        self.model = self._build(graph, rng)
        self._graph = graph
        optimizer = Adam(self.model.parameters(), lr=self.lr,
                         weight_decay=self.weight_decay)
        best_val = -1.0
        best_state = None
        for _ in range(self.epochs):
            self.model.train()
            optimizer.zero_grad()
            logits = self._logits(graph)
            loss = F.cross_entropy(logits, graph.labels,
                                   index=graph.train_idx)
            loss.backward()
            optimizer.step()
            if graph.val_idx is not None:
                with no_grad():
                    self.model.eval()
                    val_logits = self._logits(graph)
                pred = val_logits.data[graph.val_idx].argmax(axis=1)
                val_acc = float(np.mean(pred == graph.labels[graph.val_idx]))
                if val_acc > best_val:
                    best_val = val_acc
                    best_state = self.model.state_dict()
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self

    def predict(self, graph: Graph | None = None) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("call fit() first")
        graph = graph or self._graph
        self.model.eval()
        with no_grad():
            logits = self._logits(graph)
        return logits.data.argmax(axis=1)


@register("gcn")
class GCNClassifier(_SupervisedBase):
    """Two-layer GCN (Kipf & Welling, 2017)."""

    def _build(self, graph: Graph, rng: np.random.Generator) -> Module:
        return GCNEncoder(graph.num_features,
                          (self.hidden, graph.num_classes), rng=rng,
                          dropout=0.5)

    def _logits(self, graph: Graph) -> Tensor:
        return self.model(Tensor(graph.features),
                          normalized_adjacency(graph.adjacency))


class _GATLayer(Module):
    """Single-head graph attention layer (dense masked softmax)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng, bias=False)
        self.attn_src = Parameter(init.glorot_uniform((out_dim, 1), rng))
        self.attn_dst = Parameter(init.glorot_uniform((out_dim, 1), rng))

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        h = self.linear(x)
        scores = ((h @ self.attn_src).reshape(-1, 1)
                  + (h @ self.attn_dst).reshape(1, -1)).leaky_relu(0.2)
        attention = (scores + Tensor(mask)).softmax(axis=-1)
        return attention @ h


@register("gat")
class GATClassifier(_SupervisedBase):
    """Two-layer single-head GAT (Veličković et al., 2018)."""

    def _build(self, graph: Graph, rng: np.random.Generator) -> Module:
        class _Net(Module):
            def __init__(net):
                super().__init__()
                net.layer1 = _GATLayer(graph.num_features, self.hidden, rng)
                net.layer2 = _GATLayer(self.hidden, graph.num_classes, rng)

            def forward(net, x, mask):
                h = net.layer1(x, mask).leaky_relu(0.01)
                return net.layer2(h, mask)

        return _Net()

    def _logits(self, graph: Graph) -> Tensor:
        dense = graph.adjacency.toarray() + np.eye(graph.num_nodes)
        mask = np.where(dense > 0, 0.0, -1e9)
        return self.model(Tensor(graph.features), mask)


@register("rgcn")
class RGCNClassifier(_SupervisedBase):
    """Robust GCN (Zhu et al., 2019): Gaussian hidden representations.

    Each layer carries a mean and a variance; high-variance dimensions are
    attenuated (``α = exp(−σ²)``) before propagation, which is the
    mechanism that absorbs adversarial noise.  The classifier samples from
    the final Gaussian during training.
    """

    def _build(self, graph: Graph, rng: np.random.Generator) -> Module:
        hidden, classes = self.hidden, graph.num_classes

        class _Net(Module):
            def __init__(net):
                super().__init__()
                net.mean1 = GCNConv(graph.num_features, hidden, rng)
                net.var1 = GCNConv(graph.num_features, hidden, rng)
                net.mean2 = GCNConv(hidden, classes, rng)
                net.var2 = GCNConv(hidden, classes, rng)
                net.rng = rng

            def forward(net, x, adj):
                mu = net.mean1(x, adj).relu()
                sigma = net.var1(x, adj).relu() + 1e-6
                gate = (-sigma).exp()
                mu2 = net.mean2(mu * gate, adj)
                sigma2 = net.var2(sigma * gate * gate, adj).relu() + 1e-6
                if net.training:
                    eps = Tensor(net.rng.standard_normal(mu2.shape))
                    return mu2 + eps * sigma2.sqrt()
                return mu2

        return _Net()

    def _logits(self, graph: Graph) -> Tensor:
        return self.model(Tensor(graph.features),
                          normalized_adjacency(graph.adjacency))
