"""ONE (Bandyopadhyay, Lokesh & Murty, 2019) — Outlier-aware Network
Embedding via matrix factorisation.

The reference the paper takes its outlier definitions from.  Joint
factorisation of the structure matrix (``A``) and attribute matrix
(``X``) with per-node outlier weights: nodes with large residuals get
down-weighted (``log(1/o)``) so they cannot distort the embedding.
Alternating least squares with closed-form outlier updates, as in the
original.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from .base import EmbeddingMethod, register

__all__ = ["ONE"]


@register("one")
class ONE(EmbeddingMethod):
    """Outlier-aware joint matrix factorisation.

    Decomposes ``A ≈ G Hᵀ`` and ``X ≈ U Vᵀ`` with an alignment term
    ``G ≈ U W`` so both views share one latent geometry; outlier weights
    ``o¹, o²`` are residual-proportional.  Embedding = ``[G ‖ U]``.
    """

    def __init__(self, dim: int = 16, iterations: int = 20,
                 alignment: float = 1.0, seed: int = 0):
        if dim < 1:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.iterations = iterations
        self.alignment = alignment
        self.seed = seed
        self._embedding: np.ndarray | None = None
        self._outlier_scores: np.ndarray | None = None

    def fit(self, graph: Graph) -> "ONE":
        rng = np.random.default_rng(self.seed)
        a = graph.adjacency.toarray()
        x = graph.features
        n = graph.num_nodes
        k = self.dim

        g = np.abs(rng.normal(0.1, 0.05, (n, k)))
        h = np.abs(rng.normal(0.1, 0.05, (n, k)))
        u = np.abs(rng.normal(0.1, 0.05, (n, k)))
        v = np.abs(rng.normal(0.1, 0.05, (x.shape[1], k)))
        w = np.eye(k)
        o1 = np.full(n, 1.0 / n)
        o2 = np.full(n, 1.0 / n)
        ridge = 1e-6 * np.eye(k)

        for _ in range(self.iterations):
            w1 = np.log(1.0 / np.clip(o1, 1e-8, 1.0))
            w2 = np.log(1.0 / np.clip(o2, 1e-8, 1.0))

            # Row-weighted least squares for G (+ alignment to U W).
            hth = h.T @ h
            for i in range(n):
                lhs = w1[i] * hth + self.alignment * np.eye(k) + ridge
                rhs = w1[i] * (h.T @ a[i]) + self.alignment * (w.T @ u[i])
                g[i] = np.linalg.solve(lhs, rhs)
            # H solves an unweighted-by-rows system (columns of A).
            gtg_w = (g * w1[:, None]).T @ g + ridge
            h = np.linalg.solve(gtg_w, (g * w1[:, None]).T @ a).T

            vtv = v.T @ v
            for i in range(n):
                lhs = w2[i] * vtv + self.alignment * (w @ w.T) + ridge
                rhs = w2[i] * (v.T @ x[i]) + self.alignment * (w @ g[i])
                u[i] = np.linalg.solve(lhs, rhs)
            utu_w = (u * w2[:, None]).T @ u + ridge
            v = np.linalg.solve(utu_w, (u * w2[:, None]).T @ x).T

            # Procrustes-style alignment map W: U W ≈ G.
            w = np.linalg.solve(u.T @ u + ridge, u.T @ g)

            # Closed-form outlier updates: o ∝ residual.
            res1 = np.linalg.norm(a - g @ h.T, axis=1) ** 2
            res2 = np.linalg.norm(x - u @ v.T, axis=1) ** 2
            o1 = res1 / max(res1.sum(), 1e-12)
            o2 = res2 / max(res2.sum(), 1e-12)

        self._embedding = np.hstack([g, u])
        self._outlier_scores = (o1 + o2) * n / 2.0
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._embedding is None:
            raise RuntimeError("call fit() first")
        return self._embedding.copy()

    def anomaly_scores(self, graph: Graph | None = None) -> np.ndarray:
        if self._outlier_scores is None:
            raise RuntimeError("call fit() first")
        return self._outlier_scores.copy()
