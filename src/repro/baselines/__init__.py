"""Baseline methods from the paper's Section V-B.

Unsupervised embeddings: DeepWalk, LINE, GAE, VGAE, DGI, DANE, AGE,
DONE/ADONE, CFANE; anomaly specialists: Dominant, AnomalyDAE; community
specialists: vGraph, ComE; semi-supervised classifiers: GCN, GAT, RGCN.
"""

from .age import AGE
from .anomalydae import AnomalyDAE
from .base import (EmbeddingMethod, SupervisedMethod, available_methods,
                   get_method, register)
from .cfane import CFANE
from .come import ComE
from .dane import DANE
from .deepwalk import DeepWalk
from .dgi import DGI
from .dominant import Dominant
from .done import ADONE, DONE
from .gae import GAE, VGAE
from .gate import GATE
from .gcn_supervised import GATClassifier, GCNClassifier, RGCNClassifier
from .graphsage import GraphSAGE
from .line import LINE
from .one import ONE
from .sdne import SDNE
from .vgraph import VGraph

__all__ = [
    "EmbeddingMethod", "SupervisedMethod", "register", "get_method",
    "available_methods",
    "DeepWalk", "LINE", "GAE", "VGAE", "DGI", "DANE", "AGE", "DONE", "ADONE",
    "CFANE", "Dominant", "AnomalyDAE", "VGraph", "ComE", "SDNE", "GraphSAGE",
    "GATE", "ONE",
    "GCNClassifier", "GATClassifier", "RGCNClassifier",
]
