"""DGI — Deep Graph Infomax (Veličković et al., 2019).

A GCN encoder is trained to maximise mutual information between patch
representations and a graph-level summary: real node embeddings must score
higher against the readout than embeddings of a corrupted graph
(row-shuffled features), through a bilinear discriminator.
"""

from __future__ import annotations

import numpy as np

from ..core.encoder import GCNEncoder
from ..graph.graph import Graph, normalized_adjacency
from ..nn import Adam, Bilinear, Tensor, concat, functional as F, no_grad
from .base import EmbeddingMethod, register

__all__ = ["DGI"]


@register("dgi")
class DGI(EmbeddingMethod):
    """Deep Graph Infomax with shuffle corruption and sigmoid readout."""

    def __init__(self, dim: int = 64, epochs: int = 100, lr: float = 0.01,
                 seed: int = 0):
        self.dim = dim
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.encoder: GCNEncoder | None = None
        self._graph: Graph | None = None

    def fit(self, graph: Graph) -> "DGI":
        rng = np.random.default_rng(self.seed)
        self.encoder = GCNEncoder(graph.num_features, (self.dim,), rng=rng)
        discriminator = Bilinear(self.dim, rng)
        self._graph = graph

        adj_norm = normalized_adjacency(graph.adjacency)
        features = graph.features
        n = graph.num_nodes
        labels = np.concatenate([np.ones(n), np.zeros(n)])
        params = (list(self.encoder.parameters())
                  + list(discriminator.parameters()))
        optimizer = Adam(params, lr=self.lr)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            real = self.encoder(Tensor(features), adj_norm).relu()
            corrupted_features = features[rng.permutation(n)]
            fake = self.encoder(Tensor(corrupted_features), adj_norm).relu()
            summary = real.mean(axis=0).sigmoid().reshape(1, -1)

            real_scores = discriminator(real, summary).sum(axis=1)
            fake_scores = discriminator(fake, summary).sum(axis=1)
            logits = concat([real_scores, fake_scores], axis=0)
            loss = F.binary_cross_entropy_with_logits(logits, labels, "mean")
            loss.backward()
            optimizer.step()
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self.encoder is None:
            raise RuntimeError("call fit() first")
        graph = graph or self._graph
        with no_grad():
            z = self.encoder(Tensor(graph.features),
                             normalized_adjacency(graph.adjacency)).relu()
        return z.data.copy()
