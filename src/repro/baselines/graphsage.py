"""GraphSAGE (Hamilton, Ying & Leskovec, 2017), unsupervised variant.

The paper's conclusion names sampling + learned aggregation as the route
to scalability, so the library ships it as an extension baseline: two
mean-aggregator layers trained with the unsupervised random-walk loss
(co-visited nodes embed closely, negatives sampled by degree).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph.graph import Graph
from ..nn import Adam, Linear, Module, Tensor, concat, functional as F, no_grad
from .base import EmbeddingMethod, register
from .deepwalk import random_walks

__all__ = ["GraphSAGE"]


class _MeanSageLayer(Module):
    """``h' = LeakyReLU(W_self h ‖ W_neigh · mean(h_neighbors))``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.self_linear = Linear(in_dim, out_dim // 2, rng)
        self.neigh_linear = Linear(in_dim, out_dim - out_dim // 2, rng)

    def forward(self, h: Tensor, mean_adj: sp.spmatrix) -> Tensor:
        from ..nn import spmm
        neighbour_mean = spmm(mean_adj, h)
        out = concat([self.self_linear(h),
                      self.neigh_linear(neighbour_mean)], axis=1)
        return out.leaky_relu(0.01)


@register("graphsage")
class GraphSAGE(EmbeddingMethod):
    """Two mean-aggregator layers + unsupervised walk loss."""

    def __init__(self, dim: int = 32, hidden: int = 64, epochs: int = 60,
                 lr: float = 0.01, walks_per_node: int = 3,
                 walk_length: int = 8, window: int = 3, negatives: int = 5,
                 pairs_per_epoch: int = 2048, seed: int = 0):
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self.negatives = negatives
        self.pairs_per_epoch = pairs_per_epoch
        self.seed = seed
        self._layers: list[_MeanSageLayer] | None = None
        self._graph: Graph | None = None

    def fit(self, graph: Graph) -> "GraphSAGE":
        rng = np.random.default_rng(self.seed)
        self._layers = [
            _MeanSageLayer(graph.num_features, self.hidden, rng),
            _MeanSageLayer(self.hidden, self.dim, rng),
        ]
        self._graph = graph
        mean_adj = self._mean_adjacency(graph)

        # Positive pairs from random-walk windows.
        walks = random_walks(graph.adjacency, self.walks_per_node,
                             self.walk_length, rng)
        pos_u, pos_v = [], []
        for offset in range(1, self.window + 1):
            pos_u.append(walks[:, :-offset].ravel())
            pos_v.append(walks[:, offset:].ravel())
        pos_u = np.concatenate(pos_u)
        pos_v = np.concatenate(pos_v)
        degrees = graph.degrees()
        noise = (degrees + 1.0) ** 0.75
        noise /= noise.sum()

        params = [p for layer in self._layers for p in layer.parameters()]
        optimizer = Adam(params, lr=self.lr)
        features = Tensor(graph.features)
        n = graph.num_nodes
        for _ in range(self.epochs):
            optimizer.zero_grad()
            z = self._forward(features, mean_adj).l2_normalize()
            idx = rng.integers(0, len(pos_u), size=self.pairs_per_epoch)
            u, v = pos_u[idx], pos_v[idx]
            negatives = rng.choice(n, size=self.pairs_per_epoch, p=noise)
            pos_scores = (z[u] * z[v]).sum(axis=1)
            neg_scores = (z[u] * z[negatives]).sum(axis=1)
            logits = concat([pos_scores, neg_scores], axis=0)
            labels = np.r_[np.ones(len(u)), np.zeros(len(u))]
            loss = F.binary_cross_entropy_with_logits(logits, labels, "mean")
            loss.backward()
            optimizer.step()
        return self

    def _forward(self, features: Tensor, mean_adj: sp.spmatrix) -> Tensor:
        h = features
        for layer in self._layers:
            h = layer(h, mean_adj)
        return h

    @staticmethod
    def _mean_adjacency(graph: Graph) -> sp.csr_matrix:
        """Row-stochastic neighbour-averaging operator (with self-loops)."""
        adj = graph.adjacency + sp.eye(graph.num_nodes, format="csr")
        inv_deg = 1.0 / np.maximum(np.asarray(adj.sum(axis=1)).ravel(), 1.0)
        return (sp.diags(inv_deg) @ adj).tocsr()

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._layers is None:
            raise RuntimeError("call fit() first")
        graph = graph or self._graph
        with no_grad():
            z = self._forward(Tensor(graph.features),
                              self._mean_adjacency(graph))
        return z.data.copy()
