"""ComE (Cavallari et al., 2017) — community embedding.

Alternates between (1) skip-gram node embedding over random walks and
(2) fitting a Gaussian mixture over the embedding as the community model,
then (3) re-training the embedding with an extra pull toward the node's
community Gaussian mean.  Two alternations suffice at benchmark scale.
"""

from __future__ import annotations

import numpy as np

from ..cluster.gmm import GaussianMixture
from ..graph.graph import Graph
from .base import EmbeddingMethod, register
from .deepwalk import SkipGram, random_walks

__all__ = ["ComE"]


@register("come")
class ComE(EmbeddingMethod):
    """Skip-gram + GMM community loop."""

    def __init__(self, num_communities: int, dim: int = 32,
                 walks_per_node: int = 5, walk_length: int = 15,
                 window: int = 5, alternations: int = 2,
                 community_pull: float = 0.1, seed: int = 0):
        if num_communities < 1:
            raise ValueError("need at least one community")
        self.k = num_communities
        self.dim = dim
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self.alternations = alternations
        self.community_pull = community_pull
        self.seed = seed
        self._embedding: np.ndarray | None = None
        self._gmm: GaussianMixture | None = None

    def fit(self, graph: Graph) -> "ComE":
        rng = np.random.default_rng(self.seed)
        walks = random_walks(graph.adjacency, self.walks_per_node,
                             self.walk_length, rng)
        model = SkipGram(graph.num_nodes, self.dim, window=self.window,
                         seed=self.seed)
        model.train(walks)
        embedding = model.in_vectors

        for _ in range(self.alternations):
            gmm = GaussianMixture(self.k, rng).fit(embedding)
            responsibilities = gmm.predict_proba(embedding)
            # Community pull: move nodes toward their expected Gaussian mean.
            target = responsibilities @ gmm.means_
            embedding = ((1.0 - self.community_pull) * embedding
                         + self.community_pull * target)
            model.in_vectors = embedding
            model.train(walks)
            embedding = model.in_vectors
            self._gmm = gmm

        self._embedding = embedding
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._embedding is None:
            raise RuntimeError("call fit() first")
        return self._embedding.copy()

    def assign_communities(self, graph: Graph | None = None) -> np.ndarray:
        if self._gmm is None:
            raise RuntimeError("call fit() first")
        return self._gmm.predict(self._embedding)
