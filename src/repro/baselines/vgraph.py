"""vGraph (Sun et al., 2019) — probabilistic community detection.

The generative story: each edge ``(u, v)`` is produced by drawing a
community ``z ~ p(z|u)`` and then a neighbour ``v ~ p(v|z)``.  We fit the
mixture with EM over the edge list (the collapsed, non-neural variant of
the original's variational model — same likelihood, exact E-step).  The
node embedding is the posterior community mixture ``p(z|u)``.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from .base import EmbeddingMethod, register

__all__ = ["VGraph"]


@register("vgraph")
class VGraph(EmbeddingMethod):
    """Edge-generative community mixture fitted with EM."""

    def __init__(self, num_communities: int, iterations: int = 80,
                 tol: float = 1e-6, spectral_init: bool = True, seed: int = 0):
        if num_communities < 1:
            raise ValueError("need at least one community")
        self.k = num_communities
        self.iterations = iterations
        self.tol = tol
        self.spectral_init = spectral_init
        self.seed = seed
        self.node_community: np.ndarray | None = None  # p(z|u), (n, k)
        self.community_node: np.ndarray | None = None  # p(v|z), (k, n)

    def fit(self, graph: Graph) -> "VGraph":
        rng = np.random.default_rng(self.seed)
        edges = graph.edge_list()
        if len(edges) == 0:
            raise ValueError("vGraph needs edges")
        # Both directions: the model is over directed draws.
        heads = np.concatenate([edges[:, 0], edges[:, 1]])
        tails = np.concatenate([edges[:, 1], edges[:, 0]])
        n = graph.num_nodes

        phi = self._initial_membership(graph, rng)            # p(z|u)
        psi = rng.dirichlet(np.ones(n), size=self.k)          # p(v|z)
        previous = -np.inf
        for _ in range(self.iterations):
            # E-step: q(z | u, v) ∝ p(z|u) p(v|z) per edge.
            q = phi[heads] * psi[:, tails].T
            norm = q.sum(axis=1, keepdims=True)
            norm[norm == 0] = 1.0
            q /= norm

            log_likelihood = float(np.log(norm).sum())

            # M-step.
            phi = np.zeros((n, self.k))
            np.add.at(phi, heads, q)
            row_sums = phi.sum(axis=1, keepdims=True)
            row_sums[row_sums == 0] = 1.0
            phi /= row_sums

            psi = np.zeros((self.k, n))
            np.add.at(psi.T, tails, q)
            col_sums = psi.sum(axis=1, keepdims=True)
            col_sums[col_sums == 0] = 1.0
            psi /= col_sums

            if log_likelihood - previous < self.tol and np.isfinite(previous):
                break
            previous = log_likelihood

        self.node_community = phi
        self.community_node = psi
        return self

    def _initial_membership(self, graph: Graph,
                            rng: np.random.Generator) -> np.ndarray:
        """Symmetry-breaking init for EM.

        Random Dirichlet starts routinely collapse into degenerate optima;
        a spectral sketch (k-means over the leading eigenvectors of the
        normalised adjacency) lands EM in the right basin, as commonly done
        for mixture models on graphs.
        """
        n = graph.num_nodes
        if not self.spectral_init or self.k >= n - 1:
            return rng.dirichlet(np.ones(self.k), size=n)
        import scipy.sparse.linalg as spla

        from ..cluster.kmeans import kmeans
        from ..graph.graph import normalized_adjacency
        norm = normalized_adjacency(graph.adjacency)
        try:
            # Explicit v0: ARPACK otherwise draws its starting vector from
            # numpy's *global* RNG, making the whole fit nondeterministic.
            _, vectors = spla.eigsh(norm, k=min(self.k, n - 2), which="LA",
                                    v0=rng.standard_normal(n))
        except spla.ArpackNoConvergence:
            return rng.dirichlet(np.ones(self.k), size=n)
        labels, _, _ = kmeans(vectors, self.k, rng, n_init=3)
        phi = np.full((n, self.k), 0.1 / max(self.k - 1, 1))
        phi[np.arange(n), labels] = 0.9
        return phi / phi.sum(axis=1, keepdims=True)

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self.node_community is None:
            raise RuntimeError("call fit() first")
        return self.node_community.copy()

    def assign_communities(self, graph: Graph | None = None) -> np.ndarray:
        return self.embed(graph).argmax(axis=1)
