"""DANE (Gao & Huang, 2018) — Deep Attributed Network Embedding.

Two autoencoders — one over the high-order structural matrix, one over the
attributes — trained with reconstruction losses plus first-order proximity
terms and a consistency objective that aligns the two embedding views.
The final embedding concatenates both views.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.proximity import high_order_proximity
from ..nn import Adam, Tensor, functional as F, no_grad
from ._mlp import Autoencoder
from .base import EmbeddingMethod, register

__all__ = ["DANE"]


@register("dane")
class DANE(EmbeddingMethod):
    """Dual autoencoders with cross-view consistency."""

    def __init__(self, dim: int = 32, hidden: int = 64, epochs: int = 150,
                 lr: float = 0.005, order: int = 2, consistency: float = 0.5,
                 proximity_weight: float = 0.1, seed: int = 0):
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.order = order
        self.consistency = consistency
        self.proximity_weight = proximity_weight
        self.seed = seed
        self._nets: tuple[Autoencoder, Autoencoder] | None = None
        self._graph: Graph | None = None

    def fit(self, graph: Graph) -> "DANE":
        rng = np.random.default_rng(self.seed)
        structure = high_order_proximity(graph.adjacency,
                                         order=self.order).toarray()
        struct_ae = Autoencoder(graph.num_nodes, self.hidden, self.dim, rng)
        attr_ae = Autoencoder(graph.num_features, self.hidden, self.dim, rng)
        self._nets = (struct_ae, attr_ae)
        self._graph = graph
        self._structure = structure

        x_struct = Tensor(structure)
        x_attr = Tensor(graph.features)
        adj_dense = graph.adjacency.toarray()
        # Normalised-Laplacian first-order term: connected nodes embed
        # closely; normalisation keeps the term on the same O(1) scale as
        # the reconstruction losses.
        from ..graph.graph import normalized_adjacency
        lap_norm = Tensor(np.eye(graph.num_nodes)
                          - normalized_adjacency(graph.adjacency).toarray())
        params = list(struct_ae.parameters()) + list(attr_ae.parameters())
        optimizer = Adam(params, lr=self.lr)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            z_s, rec_s = struct_ae(x_struct)
            z_a, rec_a = attr_ae(x_attr)
            loss = (F.mse_loss(rec_s, structure)
                    + F.mse_loss(rec_a, graph.features))
            loss = loss + self.proximity_weight * (
                (z_s.T @ lap_norm @ z_s).trace()
                + (z_a.T @ lap_norm @ z_a).trace()) * (1.0 / graph.num_nodes)
            loss = loss + self.consistency * F.mse_loss(z_s, z_a.detach())
            loss.backward()
            optimizer.step()
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._nets is None:
            raise RuntimeError("call fit() first")
        struct_ae, attr_ae = self._nets
        if graph is None or graph is self._graph:
            structure = self._structure
            features = self._graph.features
        else:
            structure = high_order_proximity(graph.adjacency,
                                             order=self.order).toarray()
            features = graph.features
        with no_grad():
            z_s = struct_ae.encoder(Tensor(structure))
            z_a = attr_ae.encoder(Tensor(features))
        return np.hstack([z_s.data, z_a.data])
