"""DONE and ADONE (Bandyopadhyay et al., 2020) — outlier-resistant embedding.

DONE trains a structure autoencoder (over the transition matrix) and an
attribute autoencoder jointly; every loss term is weighted per node by
``log(1/oᵢ)`` where ``oᵢ`` is a learned outlier score, so outliers are
down-weighted instead of polluting the embedding.  Homophily terms pull
each node toward its neighbours and a matching term ties the two views.

ADONE replaces the matching term with an adversarial discriminator that
tries to tell structure embeddings from attribute embeddings.

The per-node outlier scores are closed-form given the residuals (the
Lagrangian solution of the original paper): ``oᵢ ∝ errᵢ``, normalised to
sum to one per term; we use the combined residual for the reported
anomaly score.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.proximity import high_order_proximity
from ..nn import Adam, Tensor, functional as F, no_grad
from ._mlp import MLP, Autoencoder
from .base import EmbeddingMethod, register

__all__ = ["DONE", "ADONE"]


class _DoneBase(EmbeddingMethod):
    def __init__(self, dim: int = 32, hidden: int = 64, epochs: int = 100,
                 lr: float = 0.005, homophily: float = 0.5,
                 matching: float = 0.5, seed: int = 0):
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.homophily = homophily
        self.matching = matching
        self.seed = seed
        self._nets = None
        self._graph: Graph | None = None
        self._outlier_scores: np.ndarray | None = None

    # -- shared machinery ---------------------------------------------- #
    def _prepare(self, graph: Graph, rng: np.random.Generator):
        structure = high_order_proximity(graph.adjacency, order=2).toarray()
        struct_ae = Autoencoder(graph.num_nodes, self.hidden, self.dim, rng)
        attr_ae = Autoencoder(graph.num_features, self.hidden, self.dim, rng)
        transition = graph.adjacency.multiply(
            1.0 / np.maximum(graph.degrees(), 1)[:, None]).tocsr()
        return structure, struct_ae, attr_ae, transition

    @staticmethod
    def _update_outlier_weights(residuals: np.ndarray) -> np.ndarray:
        """Closed-form ``oᵢ ∝ residualᵢ`` normalised to a distribution."""
        total = residuals.sum()
        if total <= 0:
            return np.full(residuals.size, 1.0 / residuals.size)
        return residuals / total

    def _weighted(self, per_node: Tensor, outliers: np.ndarray) -> Tensor:
        weights = np.log(1.0 / np.clip(outliers, 1e-8, 1.0))
        return (per_node * Tensor(weights)).mean()

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._nets is None:
            raise RuntimeError("call fit() first")
        struct_ae, attr_ae = self._nets[:2]
        if graph is None or graph is self._graph:
            structure = self._structure
            features = self._graph.features
        else:
            structure = high_order_proximity(graph.adjacency, order=2).toarray()
            features = graph.features
        with no_grad():
            z_s = struct_ae.encoder(Tensor(structure))
            z_a = attr_ae.encoder(Tensor(features))
        return np.hstack([z_s.data, z_a.data])

    def anomaly_scores(self, graph: Graph | None = None) -> np.ndarray:
        if self._outlier_scores is None:
            raise RuntimeError("call fit() first")
        return self._outlier_scores.copy()

    # -- training loop, shared between DONE and ADONE ------------------- #
    def fit(self, graph: Graph):
        rng = np.random.default_rng(self.seed)
        structure, struct_ae, attr_ae, transition = self._prepare(graph, rng)
        self._structure = structure
        self._graph = graph
        extra = self._build_extra(rng)
        self._nets = (struct_ae, attr_ae, extra)

        x_struct = Tensor(structure)
        x_attr = Tensor(graph.features)
        n = graph.num_nodes
        outliers = np.full(n, 1.0 / n)
        params = list(struct_ae.parameters()) + list(attr_ae.parameters())
        params += self._extra_parameters(extra)
        optimizer = Adam(params, lr=self.lr)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            z_s, rec_s = struct_ae(x_struct)
            z_a, rec_a = attr_ae(x_attr)

            err_s = ((rec_s - Tensor(structure)) ** 2).sum(axis=1)
            err_a = ((rec_a - Tensor(graph.features)) ** 2).sum(axis=1)
            hom_s = ((z_s - Tensor(transition @ z_s.data)) ** 2).sum(axis=1)
            hom_a = ((z_a - Tensor(transition @ z_a.data)) ** 2).sum(axis=1)
            loss = (self._weighted(err_s, outliers)
                    + self._weighted(err_a, outliers)
                    + self.homophily * self._weighted(hom_s, outliers)
                    + self.homophily * self._weighted(hom_a, outliers))
            loss = loss + self.matching * self._view_alignment(
                z_s, z_a, extra, outliers)
            loss.backward()
            optimizer.step()

            residual = (err_s.data + err_a.data
                        + self.homophily * (hom_s.data + hom_a.data))
            outliers = self._update_outlier_weights(residual)
        self._outlier_scores = outliers * n  # scale-free ranking
        return self

    # -- hooks overridden by ADONE -------------------------------------- #
    def _build_extra(self, rng):
        return None

    def _extra_parameters(self, extra):
        return []

    def _view_alignment(self, z_s, z_a, extra, outliers) -> Tensor:
        disagreement = ((z_s - z_a) ** 2).sum(axis=1)
        return self._weighted(disagreement, outliers)


@register("done")
class DONE(_DoneBase):
    """DONE: dual AEs + homophily + direct view matching."""


@register("adone")
class ADONE(_DoneBase):
    """ADONE: DONE with an adversarial view discriminator.

    The discriminator classifies which view an embedding came from; the
    encoders are trained to fool it (non-saturating GAN loss folded into
    the joint objective, adequate at this scale).
    """

    def _build_extra(self, rng):
        return MLP([self.dim, self.hidden, 1], rng)

    def _extra_parameters(self, extra):
        return list(extra.parameters())

    def _view_alignment(self, z_s, z_a, extra, outliers) -> Tensor:
        disc = extra
        logit_s = disc(z_s).reshape(-1)
        logit_a = disc(z_a).reshape(-1)
        n = logit_s.shape[0]
        # Discriminator: structure → 1, attribute → 0; generators invert it.
        d_loss = (F.binary_cross_entropy_with_logits(logit_s, np.ones(n), "mean")
                  + F.binary_cross_entropy_with_logits(logit_a, np.zeros(n), "mean"))
        g_loss = (F.binary_cross_entropy_with_logits(logit_s, np.zeros(n), "mean")
                  + F.binary_cross_entropy_with_logits(logit_a, np.ones(n), "mean"))
        return d_loss + g_loss
