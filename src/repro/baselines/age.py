"""AGE (Cui et al., 2020) — Adaptive Graph Encoder.

Two stages, as in the original: (1) a Laplacian smoothing filter applied
``t`` times to the attributes (no training), then (2) a linear encoder
trained with *adaptive* pseudo-labels: the most similar embedding pairs
are treated as positives, the least similar as negatives, with thresholds
tightened across iterations.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph.graph import Graph, normalized_adjacency
from ..nn import Adam, Linear, Tensor, functional as F, no_grad
from .base import EmbeddingMethod, register

__all__ = ["AGE", "laplacian_smooth"]


def laplacian_smooth(adjacency: sp.spmatrix, features: np.ndarray,
                     times: int = 3, k: float = 2.0 / 3.0) -> np.ndarray:
    """Apply the filter ``H ← (I − k·L_sym) H`` ``times`` times."""
    norm = normalized_adjacency(adjacency)
    n = norm.shape[0]
    smoother = (1.0 - k) * sp.eye(n) + k * norm  # I − k(I − Â) = (1−k)I + kÂ
    h = features
    for _ in range(times):
        h = smoother @ h
    return np.asarray(h)


@register("age")
class AGE(EmbeddingMethod):
    """Laplacian smoothing + adaptively supervised linear encoder."""

    def __init__(self, dim: int = 64, smooth_times: int = 3,
                 iterations: int = 4, epochs_per_iter: int = 30,
                 lr: float = 0.005, pos_start: float = 0.01,
                 neg_start: float = 0.5, pairs_per_iter: int = 4000,
                 seed: int = 0):
        self.dim = dim
        self.smooth_times = smooth_times
        self.iterations = iterations
        self.epochs_per_iter = epochs_per_iter
        self.lr = lr
        self.pos_start = pos_start
        self.neg_start = neg_start
        self.pairs_per_iter = pairs_per_iter
        self.seed = seed
        self._encoder: Linear | None = None
        self._smoothed: np.ndarray | None = None
        self._graph: Graph | None = None

    def fit(self, graph: Graph) -> "AGE":
        rng = np.random.default_rng(self.seed)
        smoothed = laplacian_smooth(graph.adjacency, graph.features,
                                    self.smooth_times)
        self._smoothed = smoothed
        self._graph = graph
        self._encoder = Linear(graph.num_features, self.dim, rng)
        optimizer = Adam(self._encoder.parameters(), lr=self.lr)
        x = Tensor(smoothed)
        n = graph.num_nodes
        for it in range(self.iterations):
            with no_grad():
                z = self._encoder(x).data
            pairs, targets = self._pseudo_labels(z, rng, it)
            for _ in range(self.epochs_per_iter):
                optimizer.zero_grad()
                z_t = self._encoder(x).l2_normalize()
                scores = (z_t[pairs[:, 0]] * z_t[pairs[:, 1]]).sum(axis=1)
                loss = F.binary_cross_entropy_with_logits(scores, targets,
                                                          "mean")
                loss.backward()
                optimizer.step()
        return self

    def _pseudo_labels(self, z: np.ndarray, rng: np.random.Generator,
                       iteration: int) -> tuple[np.ndarray, np.ndarray]:
        """Rank sampled pairs by cosine similarity; tag extremes."""
        n = z.shape[0]
        num = min(self.pairs_per_iter, n * (n - 1) // 2)
        pairs = rng.integers(0, n, size=(num * 3, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]][:num]
        norm = z / (np.linalg.norm(z, axis=1, keepdims=True) + 1e-12)
        sims = np.sum(norm[pairs[:, 0]] * norm[pairs[:, 1]], axis=1)
        order = np.argsort(sims)[::-1]
        # Thresholds tighten linearly toward each other across iterations.
        shrink = iteration / max(self.iterations, 1)
        pos_rate = self.pos_start + 0.02 * shrink
        neg_rate = self.neg_start - 0.2 * shrink
        num_pos = max(1, int(pos_rate * num))
        num_neg = max(1, int((1.0 - neg_rate) * num))
        chosen = np.concatenate([order[:num_pos], order[-num_neg:]])
        targets = np.concatenate([np.ones(num_pos), np.zeros(num_neg)])
        return pairs[chosen], targets

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._encoder is None:
            raise RuntimeError("call fit() first")
        if graph is None or graph is self._graph:
            smoothed = self._smoothed
        else:
            smoothed = laplacian_smooth(graph.adjacency, graph.features,
                                        self.smooth_times)
        with no_grad():
            z = self._encoder(Tensor(smoothed))
        return z.data.copy()
