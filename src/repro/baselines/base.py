"""Base interfaces and the registry for baseline methods.

Two method families mirror the paper's Table III columns:

* :class:`EmbeddingMethod` — unsupervised; produces node embeddings that
  downstream probes consume.
* :class:`SupervisedMethod` — semi-supervised; predicts labels directly
  (GCN, GAT, RGCN columns).

``register``/``get_method`` give the benchmark harness a uniform way to
enumerate every baseline.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..graph.graph import Graph

__all__ = ["EmbeddingMethod", "SupervisedMethod", "register", "get_method",
           "available_methods"]

_REGISTRY: dict[str, Callable[..., "EmbeddingMethod | SupervisedMethod"]] = {}


class EmbeddingMethod:
    """Unsupervised node-embedding method."""

    name = "embedding-method"

    def fit(self, graph: Graph) -> "EmbeddingMethod":
        raise NotImplementedError

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        raise NotImplementedError

    def fit_transform(self, graph: Graph) -> np.ndarray:
        return self.fit(graph).embed(graph)

    def anomaly_scores(self, graph: Graph | None = None) -> np.ndarray | None:
        """Native anomaly scores, or ``None`` if the method has none
        (the harness then falls back to the isolation forest)."""
        return None


class SupervisedMethod:
    """Semi-supervised node classifier."""

    name = "supervised-method"

    def fit(self, graph: Graph) -> "SupervisedMethod":
        raise NotImplementedError

    def predict(self, graph: Graph | None = None) -> np.ndarray:
        raise NotImplementedError


def register(name: str):
    """Class decorator adding a constructor to the method registry."""
    def decorator(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls
    return decorator


def get_method(name: str, **kwargs):
    """Instantiate a registered method by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown method {name!r}; available: {available_methods()}")
    return _REGISTRY[name](**kwargs)


def available_methods() -> list[str]:
    return sorted(_REGISTRY)
