"""Dominant (Ding et al., 2019) — deep anomaly detection on attributed graphs.

A GCN encoder feeds two decoders: an inner-product structure decoder and a
GCN attribute decoder.  Node anomaly scores are the convex combination of
the per-node reconstruction errors, ``score = α‖a − â‖ + (1−α)‖x − x̂‖``.
"""

from __future__ import annotations

import numpy as np

from ..core.encoder import GCNEncoder
from ..graph.graph import Graph, normalized_adjacency
from ..nn import Adam, GCNConv, Tensor, functional as F, no_grad
from .base import EmbeddingMethod, register

__all__ = ["Dominant"]


@register("dominant")
class Dominant(EmbeddingMethod):
    """GCN autoencoder reconstructing structure and attributes jointly."""

    def __init__(self, dim: int = 32, hidden: int = 64, epochs: int = 100,
                 lr: float = 0.005, alpha: float = 0.5, seed: int = 0):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.alpha = alpha
        self.seed = seed
        self.encoder: GCNEncoder | None = None
        self._attr_decoder: GCNConv | None = None
        self._graph: Graph | None = None
        self._scores: np.ndarray | None = None

    def fit(self, graph: Graph) -> "Dominant":
        rng = np.random.default_rng(self.seed)
        self.encoder = GCNEncoder(graph.num_features, (self.hidden, self.dim),
                                  rng=rng)
        self._attr_decoder = GCNConv(self.dim, graph.num_features, rng)
        self._graph = graph

        adj_norm = normalized_adjacency(graph.adjacency)
        features = Tensor(graph.features)
        adj_dense = graph.adjacency.toarray() + np.eye(graph.num_nodes)
        params = (list(self.encoder.parameters())
                  + list(self._attr_decoder.parameters()))
        optimizer = Adam(params, lr=self.lr)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            z = self.encoder(features, adj_norm)
            struct_rec = (z @ z.T).sigmoid()
            attr_rec = self._attr_decoder(z, adj_norm)
            loss = (self.alpha * F.mse_loss(struct_rec, adj_dense)
                    + (1.0 - self.alpha) * F.mse_loss(attr_rec, graph.features))
            loss.backward()
            optimizer.step()

        with no_grad():
            z = self.encoder(features, adj_norm)
            struct_rec = (z @ z.T).sigmoid()
            attr_rec = self._attr_decoder(z, adj_norm)
        struct_err = np.linalg.norm(struct_rec.data - adj_dense, axis=1)
        attr_err = np.linalg.norm(attr_rec.data - graph.features, axis=1)
        self._scores = (self.alpha * struct_err
                        + (1.0 - self.alpha) * attr_err)
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self.encoder is None:
            raise RuntimeError("call fit() first")
        graph = graph or self._graph
        with no_grad():
            z = self.encoder(Tensor(graph.features),
                             normalized_adjacency(graph.adjacency))
        return z.data.copy()

    def anomaly_scores(self, graph: Graph | None = None) -> np.ndarray:
        if self._scores is None:
            raise RuntimeError("call fit() first")
        return self._scores.copy()
