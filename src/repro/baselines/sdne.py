"""SDNE (Wang, Cui & Zhu, 2016) — Structural Deep Network Embedding.

A deep autoencoder over adjacency rows with the classic two terms: the
second-order loss is a *weighted* reconstruction where observed edges are
penalised ``beta``× harder than zeros, and the first-order loss is the
Laplacian term pulling connected nodes together in embedding space.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph, normalized_adjacency
from ..nn import Adam, Tensor, no_grad
from ._mlp import Autoencoder
from .base import EmbeddingMethod, register

__all__ = ["SDNE"]


@register("sdne")
class SDNE(EmbeddingMethod):
    """Deep autoencoder with first+second order structural losses."""

    def __init__(self, dim: int = 32, hidden: int = 64, epochs: int = 150,
                 lr: float = 0.005, beta: float = 10.0, alpha: float = 0.1,
                 weight_decay: float = 1e-5, seed: int = 0):
        if beta < 1.0:
            raise ValueError("beta must be >= 1 (edge up-weighting)")
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.beta = beta
        self.alpha = alpha
        self.weight_decay = weight_decay
        self.seed = seed
        self._net: Autoencoder | None = None
        self._graph: Graph | None = None

    def fit(self, graph: Graph) -> "SDNE":
        rng = np.random.default_rng(self.seed)
        self._net = Autoencoder(graph.num_nodes, self.hidden, self.dim, rng)
        self._graph = graph

        adjacency = graph.adjacency.toarray()
        weights = np.where(adjacency > 0, self.beta, 1.0)
        x = Tensor(adjacency)
        lap_norm = Tensor(np.eye(graph.num_nodes)
                          - normalized_adjacency(graph.adjacency).toarray())
        optimizer = Adam(self._net.parameters(), lr=self.lr,
                         weight_decay=self.weight_decay)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            z, reconstruction = self._net(x)
            second_order = (((reconstruction - x) ** 2)
                            * Tensor(weights)).mean()
            first_order = (z.T @ lap_norm @ z).trace() * (1.0 / graph.num_nodes)
            loss = second_order + self.alpha * first_order
            loss.backward()
            optimizer.step()
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._net is None:
            raise RuntimeError("call fit() first")
        graph = graph or self._graph
        with no_grad():
            z = self._net.encoder(Tensor(graph.adjacency.toarray()))
        return z.data.copy()
