"""GATE-style graph attention autoencoder (Salehi & Davulcu, 2020).

The related-work follow-up to GAE the paper cites as [22]: the encoder
aggregates neighbours with learned attention weights instead of the fixed
symmetric normalisation, then decodes edges by inner product.  Single
attention head per layer, dense masked softmax (fine at benchmark scale).
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..nn import Adam, Linear, Module, Parameter, Tensor, functional as F, \
    init, no_grad
from .base import EmbeddingMethod, register

__all__ = ["GATE"]


class _AttentionLayer(Module):
    """Single-head additive attention over the 1-hop neighbourhood."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng, bias=False)
        self.attn_src = Parameter(init.glorot_uniform((out_dim, 1), rng))
        self.attn_dst = Parameter(init.glorot_uniform((out_dim, 1), rng))

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        h = self.linear(x)
        scores = ((h @ self.attn_src).reshape(-1, 1)
                  + (h @ self.attn_dst).reshape(1, -1)).leaky_relu(0.2)
        attention = (scores + Tensor(mask)).softmax(axis=-1)
        return attention @ h


@register("gate")
class GATE(EmbeddingMethod):
    """Attention encoder + inner-product edge decoder."""

    def __init__(self, dim: int = 16, hidden: int = 32, epochs: int = 120,
                 lr: float = 0.005, seed: int = 0):
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._layers: list[_AttentionLayer] | None = None
        self._graph: Graph | None = None

    def fit(self, graph: Graph) -> "GATE":
        rng = np.random.default_rng(self.seed)
        self._layers = [
            _AttentionLayer(graph.num_features, self.hidden, rng),
            _AttentionLayer(self.hidden, self.dim, rng),
        ]
        self._graph = graph

        mask = self._mask(graph)
        target = graph.adjacency.toarray() + np.eye(graph.num_nodes)
        pos_weight = float((target.size - target.sum()) / max(target.sum(), 1))
        params = [p for layer in self._layers for p in layer.parameters()]
        optimizer = Adam(params, lr=self.lr)
        features = Tensor(graph.features)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            z = self._forward(features, mask)
            logits = z @ z.T
            loss = F.weighted_binary_cross_entropy_with_logits(
                logits, target, pos_weight=pos_weight)
            loss.backward()
            optimizer.step()
        return self

    def _forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        h = self._layers[0](x, mask).leaky_relu(0.01)
        return self._layers[1](h, mask)

    @staticmethod
    def _mask(graph: Graph) -> np.ndarray:
        dense = graph.adjacency.toarray() + np.eye(graph.num_nodes)
        return np.where(dense > 0, 0.0, -1e9)

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._layers is None:
            raise RuntimeError("call fit() first")
        graph = graph or self._graph
        with no_grad():
            z = self._forward(Tensor(graph.features), self._mask(graph))
        return z.data.copy()
