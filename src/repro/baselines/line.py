"""LINE (Tang et al., 2015) — first- plus second-order proximity.

Edge-sampling SGD with negative sampling, exactly the two KL objectives of
the original paper.  The final embedding concatenates the first- and
second-order halves, the usual protocol.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from .base import EmbeddingMethod, register

__all__ = ["LINE"]


def _scatter_mean(table: np.ndarray, index: np.ndarray,
                  updates: np.ndarray) -> None:
    counts = np.bincount(index, minlength=table.shape[0])
    accumulated = np.zeros_like(table)
    np.add.at(accumulated, index, updates)
    touched = counts > 0
    table[touched] += accumulated[touched] / counts[touched, None]


@register("line")
class LINE(EmbeddingMethod):
    """LINE(1st+2nd): each half of ``dim`` trained on one objective."""

    def __init__(self, dim: int = 64, samples_per_edge: int = 200,
                 negatives: int = 5, lr: float = 0.2, seed: int = 0,
                 batch_size: int = 1024):
        if dim % 2:
            raise ValueError("dim must be even (two halves are concatenated)")
        self.dim = dim
        self.samples_per_edge = samples_per_edge
        self.negatives = negatives
        self.lr = lr
        self.seed = seed
        self.batch_size = batch_size
        self._embedding: np.ndarray | None = None

    def fit(self, graph: Graph) -> "LINE":
        rng = np.random.default_rng(self.seed)
        edges = graph.edge_list()
        if len(edges) == 0:
            raise ValueError("LINE needs at least one edge")
        n = graph.num_nodes
        half = self.dim // 2
        degrees = graph.degrees()
        noise = degrees ** 0.75
        noise = noise / noise.sum()

        first = self._train_order(edges, n, half, noise, rng, second=False)
        second = self._train_order(edges, n, half, noise, rng, second=True)
        self._embedding = np.hstack([first, second])
        return self

    def _train_order(self, edges, n, dim, noise, rng, second: bool) -> np.ndarray:
        scale = 0.5 / dim
        vertices = rng.uniform(-scale, scale, (n, dim))
        contexts = rng.uniform(-scale, scale, (n, dim)) if second else vertices

        total = self.samples_per_edge * len(edges)
        batch = self.batch_size
        for start in range(0, total, batch):
            size = min(batch, total - start)
            lr = self.lr * (1.0 - start / total) + 1e-4
            picked = edges[rng.integers(0, len(edges), size=size)]
            # Undirected edges are used in both directions.
            flip = rng.random(size) < 0.5
            u = np.where(flip, picked[:, 1], picked[:, 0])
            v = np.where(flip, picked[:, 0], picked[:, 1])
            negatives = rng.choice(n, size=(size, self.negatives), p=noise)

            v_u = vertices[u]
            c_v = contexts[v]
            c_n = contexts[negatives]
            pos_inner = np.clip(np.sum(v_u * c_v, axis=1), -10.0, 10.0)
            neg_inner = np.clip(np.einsum("bd,bkd->bk", v_u, c_n), -10.0, 10.0)
            pos = 1.0 / (1.0 + np.exp(-pos_inner))
            neg = 1.0 / (1.0 + np.exp(-neg_inner))

            grad_pos = (pos - 1.0)[:, None]
            grad_u = grad_pos * c_v + np.einsum("bk,bkd->bd", neg, c_n)
            grad_v = grad_pos * v_u
            grad_n = neg[..., None] * v_u[:, None, :]

            # Average duplicate-token updates within the batch (see
            # DeepWalk._scatter_mean for the divergence this prevents).
            _scatter_mean(vertices, u, -lr * grad_u)
            _scatter_mean(contexts, v, -lr * grad_v)
            _scatter_mean(contexts, negatives.ravel(),
                          -lr * grad_n.reshape(-1, dim))
        return vertices

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._embedding is None:
            raise RuntimeError("call fit() first")
        return self._embedding.copy()
