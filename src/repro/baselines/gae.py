"""GAE and VGAE (Kipf & Welling, 2016).

GCN encoder, inner-product decoder, (weighted) binary cross-entropy on the
adjacency; VGAE adds the Gaussian reparameterisation and a KL prior.
"""

from __future__ import annotations

import numpy as np

from ..core.encoder import GCNEncoder
from ..graph.graph import Graph, normalized_adjacency
from ..nn import Adam, GCNConv, Tensor, functional as F, no_grad
from .base import EmbeddingMethod, register

__all__ = ["GAE", "VGAE"]


@register("gae")
class GAE(EmbeddingMethod):
    """Graph autoencoder: ``Â = σ(ZZᵀ)`` trained against ``A + I``."""

    def __init__(self, dim: int = 16, hidden: int = 32, epochs: int = 200,
                 lr: float = 0.01, seed: int = 0):
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.encoder: GCNEncoder | None = None
        self._graph: Graph | None = None

    def fit(self, graph: Graph) -> "GAE":
        rng = np.random.default_rng(self.seed)
        self.encoder = GCNEncoder(graph.num_features, (self.hidden, self.dim),
                                  rng=rng)
        self._graph = graph
        adj_norm = normalized_adjacency(graph.adjacency)
        features = Tensor(graph.features)
        target = graph.adjacency.toarray() + np.eye(graph.num_nodes)
        pos_weight = float((target.size - target.sum()) / max(target.sum(), 1))
        optimizer = Adam(self.encoder.parameters(), lr=self.lr)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            z = self.encoder(features, adj_norm)
            logits = z @ z.T
            loss = F.weighted_binary_cross_entropy_with_logits(
                logits, target, pos_weight=pos_weight)
            loss.backward()
            optimizer.step()
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self.encoder is None:
            raise RuntimeError("call fit() first")
        graph = graph or self._graph
        with no_grad():
            z = self.encoder(Tensor(graph.features),
                             normalized_adjacency(graph.adjacency))
        return z.data.copy()


@register("vgae")
class VGAE(EmbeddingMethod):
    """Variational GAE with diagonal-Gaussian posterior."""

    def __init__(self, dim: int = 16, hidden: int = 32, epochs: int = 200,
                 lr: float = 0.01, seed: int = 0):
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._graph: Graph | None = None
        self._layers = None

    def fit(self, graph: Graph) -> "VGAE":
        rng = np.random.default_rng(self.seed)
        shared = GCNConv(graph.num_features, self.hidden, rng)
        mu_layer = GCNConv(self.hidden, self.dim, rng)
        logvar_layer = GCNConv(self.hidden, self.dim, rng)
        self._layers = (shared, mu_layer, logvar_layer)
        self._graph = graph

        adj_norm = normalized_adjacency(graph.adjacency)
        features = Tensor(graph.features)
        n = graph.num_nodes
        target = graph.adjacency.toarray() + np.eye(n)
        pos_weight = float((target.size - target.sum()) / max(target.sum(), 1))
        params = (list(shared.parameters()) + list(mu_layer.parameters())
                  + list(logvar_layer.parameters()))
        optimizer = Adam(params, lr=self.lr)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            h = shared(features, adj_norm).relu()
            mu = mu_layer(h, adj_norm)
            logvar = logvar_layer(h, adj_norm).clip(-10.0, 10.0)
            eps = Tensor(rng.standard_normal((n, self.dim)))
            z = mu + (logvar * 0.5).exp() * eps
            logits = z @ z.T
            recon = F.weighted_binary_cross_entropy_with_logits(
                logits, target, pos_weight=pos_weight)
            kl = ((mu * mu) + logvar.exp() - logvar - 1.0).sum() * (0.5 / n)
            loss = recon + kl * (1.0 / n)
            loss.backward()
            optimizer.step()
        return self

    def embed(self, graph: Graph | None = None) -> np.ndarray:
        if self._layers is None:
            raise RuntimeError("call fit() first")
        shared, mu_layer, _ = self._layers
        graph = graph or self._graph
        adj_norm = normalized_adjacency(graph.adjacency)
        with no_grad():
            h = shared(Tensor(graph.features), adj_norm).relu()
            mu = mu_layer(h, adj_norm)
        return mu.data.copy()
