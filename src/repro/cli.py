"""Command-line interface: ``python -m repro <command>``.

Commands
--------
datasets
    List the calibrated benchmark datasets and their Table II statistics.
generate
    Generate a dataset and save it as ``.npz`` (see ``repro.graph.io``).
embed
    Train an embedding method on a dataset and save the embedding.
attack
    Poison a dataset with one of the implemented attacks and save it.
evaluate
    Run one downstream task (classification / anomaly / community /
    link-prediction) for a method on a dataset and print the metric.
profile
    Train a model on a synthetic graph under the op profiler and print
    the top-k per-op time table plus the traced span tree.
obs
    Browse the persistent run ledger: ``repro obs runs list`` /
    ``show`` / ``diff`` / ``export`` / ``tail`` / ``regress`` (the
    ``runs`` noun is optional).  ``export`` writes Chrome trace-event
    JSON (load it in Perfetto / ``chrome://tracing``) and Prometheus
    text files from a recorded entry.
serve
    The embedding serving layer: ``repro serve export`` trains a method
    and publishes its embeddings + memberships to a versioned,
    checksummed, memory-mapped store; ``repro serve query`` answers
    ``similar`` / ``community`` / free-vector k-NN against a store
    directly; ``repro serve run`` starts the asyncio HTTP front end
    (micro-batching + LRU cache) over it.

Global observability flags (before the subcommand): ``--trace PATH``
streams every structured event the run emits to a JSONL file and
appends the final span tree; ``--profile`` prints the per-op autograd
table after the command finishes; ``--run-dir [PATH]`` records every
fit/denoise/experiment the command performs into the run ledger at
PATH (bare flag: the one-slot default ``.repro/runs/``).

``--workers N`` (default: the ``REPRO_WORKERS`` environment variable,
else 1) fans the parallelisable layers — ``n_init`` restarts, grid
trials, experiment sweep axes — over a process pool with deterministic
merging, so any command's output is identical at any worker count.

``--dtype {float32,float64}`` (default: the ``REPRO_DTYPE`` environment
variable, else float64) selects the numeric precision of the training
path for every model the command builds.

``--backend {numpy,compiled}`` (default: the ``REPRO_BACKEND``
environment variable, else numpy) selects the kernel backend the
training hot loops dispatch to; either choice produces bit-identical
embeddings, so it only changes speed.

``--train-mode {full,sampled}`` (default: the ``REPRO_TRAIN_MODE``
environment variable, else full) selects the training regime for every
AnECI fit the command performs: ``full`` is the historical full-batch
epoch (bit-identical to every release so far); ``sampled`` switches to
edge/negative-sampled reconstruction, subsampled modularity and a
fanout-bounded minibatch GCN forward — sublinear per-epoch cost for
100k–1M-node graphs (tune with ``REPRO_BATCH_NODES`` /
``REPRO_EDGE_SAMPLES`` / ``REPRO_NEG_SAMPLES`` / ``REPRO_FANOUT``).

``--checkpoint-dir PATH`` (default: the ``REPRO_CHECKPOINT_DIR``
environment variable, else off) makes every fit write crash-safe
snapshots under PATH; ``repro embed --resume`` continues an interrupted
run from its newest valid snapshot, bit-identically.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AnECI reproduction toolkit (ICDE 2022)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write structured event records (epochs, "
                             "denoising, restarts, spans) as JSONL")
    parser.add_argument("--profile", action="store_true",
                        help="print the per-op autograd profile after "
                             "the command finishes")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="process-pool workers for restarts/sweeps "
                             "(default: $REPRO_WORKERS, else 1; results "
                             "are identical at any worker count)")
    parser.add_argument("--dtype", choices=["float32", "float64"],
                        default=None,
                        help="numeric precision of the training path "
                             "(default: $REPRO_DTYPE, else float64)")
    parser.add_argument("--backend", choices=["numpy", "compiled"],
                        default=None,
                        help="kernel backend for the training hot loops "
                             "(default: $REPRO_BACKEND, else numpy; "
                             "results are bit-identical either way)")
    parser.add_argument("--train-mode", choices=["full", "sampled"],
                        default=None,
                        help="training regime for AnECI fits (default: "
                             "$REPRO_TRAIN_MODE, else full; 'sampled' "
                             "trades exactness for sublinear per-epoch "
                             "cost on very large graphs)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="PATH",
                        help="write crash-safe training snapshots under "
                             "PATH (default: $REPRO_CHECKPOINT_DIR, else "
                             "off)")
    from .obs.store import DEFAULT_RUN_DIR
    parser.add_argument("--run-dir", nargs="?", const=DEFAULT_RUN_DIR,
                        default=None, metavar="PATH",
                        help="record every run this command performs into "
                             "the persistent run ledger at PATH (bare flag: "
                             f"{DEFAULT_RUN_DIR}; default: $REPRO_RUN_DIR, "
                             "else off)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list calibrated benchmark datasets")

    gen = sub.add_parser("generate", help="generate a dataset to .npz")
    _dataset_args(gen)
    gen.add_argument("--out", required=True, help="output .npz path")

    emb = sub.add_parser("embed", help="train a method, save the embedding")
    _dataset_args(emb)
    emb.add_argument("--method", default="aneci",
                     help="aneci, aneci+ or a registered baseline name")
    emb.add_argument("--epochs", type=int, default=None)
    emb.add_argument("--n-init", type=int, default=None,
                     help="independent restarts (aneci/aneci+ only)")
    emb.add_argument("--out", required=True, help="output .npy path")
    emb.add_argument("--json", action="store_true",
                     help="print a structured JSON record instead of text")
    emb.add_argument("--resume", action="store_true",
                     help="resume an interrupted fit from the newest valid "
                          "snapshot under --checkpoint-dir (aneci/aneci+ "
                          "only)")

    att = sub.add_parser("attack", help="poison a dataset, save to .npz")
    _dataset_args(att)
    att.add_argument("--attack", choices=["random", "dice"],
                     default="random")
    att.add_argument("--rate", type=float, default=0.2,
                     help="perturbation rate (fraction of |E|)")
    att.add_argument("--out", required=True, help="output .npz path")

    ev = sub.add_parser("evaluate", help="run a downstream task")
    _dataset_args(ev)
    ev.add_argument("--method", default="aneci")
    ev.add_argument("--task", required=True,
                    choices=["classification", "anomaly", "community",
                             "link-prediction"])
    ev.add_argument("--epochs", type=int, default=None)
    ev.add_argument("--json", action="store_true",
                    help="print a structured JSON record instead of text")

    prof = sub.add_parser(
        "profile", help="profile a model fit on a synthetic graph")
    _dataset_args(prof)
    prof.add_argument("--method", default="aneci",
                      help="aneci or aneci+ (autograd-op level profile)")
    prof.add_argument("--epochs", type=int, default=20)
    prof.add_argument("--top", type=int, default=10,
                      help="number of ops in the table")
    prof.add_argument("--json", action="store_true",
                      help="print the profile as JSON instead of a table")

    ex = sub.add_parser(
        "experiment", help="regenerate one of the paper's artefacts")
    _dataset_args(ex)
    ex.add_argument("name", choices=[
        "classification", "defense", "nettack", "fga", "random-attack",
        "anomaly", "community", "timing"])
    ex.add_argument("--out", default=None,
                    help="optional path for a markdown report")

    obs = sub.add_parser(
        "obs", help="browse the run ledger (list/show/diff/export/tail)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    # ``repro obs runs <verb>`` and ``repro obs <verb>`` are synonyms:
    # the same verb parsers hang off both levels with a shared dest.
    runs = obs_sub.add_parser("runs", help="alias namespace for the verbs")
    _obs_verbs(runs.add_subparsers(dest="obs_command", required=True))
    _obs_verbs(obs_sub)

    srv = sub.add_parser(
        "serve", help="export / query / run the embedding serving layer")
    srv_sub = srv.add_subparsers(dest="serve_command", required=True)
    sx = srv_sub.add_parser(
        "export", help="train a method and publish it to a serving store")
    _dataset_args(sx)
    sx.add_argument("--method", default="aneci",
                    help="aneci or aneci+ (needs export_serving support)")
    sx.add_argument("--epochs", type=int, default=None)
    sx.add_argument("--store", required=True, metavar="DIR",
                    help="serving store directory")
    sx.add_argument("--json", action="store_true",
                    help="print a structured JSON record instead of text")
    sq = srv_sub.add_parser(
        "query", help="answer one k-NN query against a store (no server)")
    sq.add_argument("--store", required=True, metavar="DIR")
    sq.add_argument("--node", type=int, default=None,
                    help="query node id (similar / community modes)")
    sq.add_argument("--vector", default=None, metavar="V1,V2,...",
                    help="free query vector (overrides --node)")
    sq.add_argument("--mode", choices=["similar", "community"],
                    default="similar")
    sq.add_argument("-k", "--k", type=int, default=10)
    sq.add_argument("--index", default=None,
                    help="index backend (default: $REPRO_SERVE_INDEX, "
                         "else exact)")
    sq.add_argument("--retries", type=int, default=2,
                    help="jittered-backoff retries on transient store/"
                         "index failures (default 2)")
    sq.add_argument("--retry-base-ms", type=float, default=50.0,
                    help="base backoff delay in ms (default 50)")
    sq.add_argument("--json", action="store_true",
                    help="print a structured JSON record instead of text")
    sr = srv_sub.add_parser(
        "run", help="serve a store over HTTP (micro-batching + LRU cache)")
    sr.add_argument("--store", required=True, metavar="DIR")
    sr.add_argument("--host", default="127.0.0.1")
    sr.add_argument("--port", type=int, default=8707)
    sr.add_argument("--index", default=None,
                    help="index backend (default: $REPRO_SERVE_INDEX, "
                         "else exact)")
    sr.add_argument("--queue", type=int, default=None,
                    help="admission queue bound (default: "
                         "$REPRO_SERVE_QUEUE, else 1024; 0 = unbounded)")
    sr.add_argument("--deadline-ms", type=float, default=None,
                    help="per-request deadline (default: "
                         "$REPRO_SERVE_DEADLINE_MS, else 1000; 0 disables)")
    return parser


def _obs_verbs(sub) -> None:
    """Attach the ledger verbs to one ``add_subparsers`` result."""
    ls = sub.add_parser("list", help="one line per recorded run")
    ls.add_argument("--key", default=None,
                    help="restrict to one run key (substring ok)")
    show = sub.add_parser("show", help="print one full entry as JSON")
    show.add_argument("key", help="run key (unique substring ok)")
    show.add_argument("--seq", type=int, default=None,
                      help="entry sequence number (default: newest)")
    diff = sub.add_parser("diff", help="compare two entries of one key")
    diff.add_argument("key", help="run key (unique substring ok)")
    diff.add_argument("--a", type=int, default=None, metavar="SEQ",
                      help="baseline entry (default: second newest)")
    diff.add_argument("--b", type=int, default=None, metavar="SEQ",
                      help="candidate entry (default: newest)")
    diff.add_argument("--json", action="store_true",
                      help="print the structured diff instead of text")
    exp = sub.add_parser("export", help="write Chrome-trace + Prometheus "
                                        "files from one entry")
    exp.add_argument("key", help="run key (unique substring ok)")
    exp.add_argument("--seq", type=int, default=None,
                     help="entry sequence number (default: newest)")
    exp.add_argument("--out", default=".", metavar="DIR",
                     help="output directory (default: cwd)")
    exp.add_argument("--format", choices=["chrome", "prom", "both"],
                     default="both")
    tail = sub.add_parser("tail", help="print the newest entries as JSONL")
    tail.add_argument("-n", "--lines", type=int, default=10)
    reg = sub.add_parser("regress", help="re-judge the newest entry "
                                         "against its baseline")
    reg.add_argument("key", help="run key (unique substring ok)")
    reg.add_argument("--strict", action="store_true",
                     help="exit 3 when findings exist (default: warn only)")


def _dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cora",
                        help="cora / citeseer / polblogs / pubmed")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=0)


def _load(args):
    from .graph import load_dataset
    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


# Every ``--json`` surface funnels through the one shared serializer in
# :mod:`repro.jsonio` (non-finite → null, ``allow_nan=False``) instead
# of per-command copies.
from .jsonio import dumps as _strict_json  # noqa: E402
from .jsonio import finite_or_none as _finite_or_null  # noqa: E402


def _build_method(name: str, graph, epochs: int | None, seed: int,
                  n_init: int | None = None):
    """Instantiate AnECI, AnECI+ or any registered baseline by name."""
    from . import baselines
    from .core import AnECI, AnECIPlus
    lowered = name.lower()
    extra = {"epochs": epochs} if epochs else {}
    if n_init and lowered in ("aneci", "aneci+", "aneciplus"):
        extra["n_init"] = n_init
    if lowered == "aneci":
        return AnECI(graph.num_features, num_communities=graph.num_classes,
                     seed=seed, **extra)
    if lowered in ("aneci+", "aneciplus"):
        return AnECIPlus(graph.num_features,
                         num_communities=graph.num_classes, seed=seed,
                         **extra)
    kwargs = dict(extra)
    if lowered in ("vgraph", "come"):
        kwargs = {"num_communities": graph.num_classes}
    return baselines.get_method(lowered, seed=seed, **kwargs)


def cmd_datasets(_args) -> int:
    from .graph.datasets import DATASETS
    print(f"{'name':10s} {'N':>6s} {'M':>6s} {'classes':>8s} {'d':>6s} "
          f"{'mixing':>7s}")
    for spec in DATASETS.values():
        d = spec.num_features if spec.num_features else "(id)"
        print(f"{spec.name:10s} {spec.num_nodes:>6d} {spec.num_edges:>6d} "
              f"{spec.num_classes:>8d} {str(d):>6s} {spec.mixing:>7.2f}")
    return 0


def cmd_generate(args) -> int:
    from .graph.io import save_graph
    graph = _load(args)
    save_graph(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def cmd_embed(args) -> int:
    from .obs import events
    graph = _load(args)
    method = _build_method(args.method, graph, args.epochs, args.seed,
                           n_init=getattr(args, "n_init", None))
    fit_kwargs = {}
    if getattr(args, "resume", False):
        directory = os.environ.get("REPRO_CHECKPOINT_DIR")
        if not directory:
            print("--resume needs --checkpoint-dir (or "
                  "$REPRO_CHECKPOINT_DIR) to locate the snapshots",
                  file=sys.stderr)
            return 2
        import inspect
        if "resume_from" not in inspect.signature(
                method.fit_transform).parameters:
            print(f"--resume is not supported by method "
                  f"{args.method!r}", file=sys.stderr)
            return 2
        fit_kwargs["resume_from"] = directory
    start = time.perf_counter()
    embedding = method.fit_transform(graph, **fit_kwargs)
    elapsed = time.perf_counter() - start
    np.save(args.out, embedding)
    record = {"command": "embed", "method": args.method,
              "dataset": args.dataset, "scale": args.scale,
              "seed": args.seed, "shape": list(embedding.shape),
              "out": str(args.out), "elapsed_s": elapsed,
              "resumed": bool(fit_kwargs)}
    events.emit("embed", **record)
    if getattr(args, "json", False):
        print(_strict_json(record))
    else:
        print(f"wrote {embedding.shape} embedding to {args.out}")
    return 0


def cmd_attack(args) -> int:
    from .attacks import DICE, RandomAttack
    from .graph.io import save_graph
    graph = _load(args)
    attack = (RandomAttack(args.rate, seed=args.seed) if args.attack == "random"
              else DICE(args.rate, seed=args.seed))
    result = attack.attack(graph)
    save_graph(result.graph, args.out)
    print(f"{args.attack} attack: +{len(result.added_edges)} edges, "
          f"-{len(result.removed_edges)} edges -> {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    from .obs import events
    graph = _load(args)
    method = _build_method(args.method, graph, args.epochs, args.seed)
    rng = np.random.default_rng(args.seed)

    start = time.perf_counter()
    if args.task == "classification":
        from .tasks import evaluate_embedding
        value = evaluate_embedding(method.fit_transform(graph), graph)
        metric, text = "accuracy", f"classification accuracy: {value:.4f}"
    elif args.task == "anomaly":
        from .anomalies import seed_outliers
        from .tasks import anomaly_auc, isolation_forest_scores
        augmented, mask = seed_outliers(graph, rng, fraction=0.05,
                                        kind="mix")
        method = _build_method(args.method, augmented, args.epochs, args.seed)
        method.fit(augmented)
        scores = method.anomaly_scores() if hasattr(method, "anomaly_scores") \
            else None
        if scores is None:
            scores = isolation_forest_scores(method.embed(), seed=args.seed)
        value = anomaly_auc(mask, scores)
        metric, text = "auc", f"anomaly AUC: {value:.4f}"
    elif args.task == "community":
        from .core import newman_modularity
        from .tasks import communities_from_embedding
        method.fit(graph)
        if hasattr(method, "assign_communities"):
            communities = method.assign_communities()
        else:
            communities = communities_from_embedding(
                method.embed(), graph.num_classes, seed=args.seed)
        value = newman_modularity(graph.adjacency, communities)
        metric, text = "modularity", f"modularity: {value:.4f}"
    else:  # link-prediction
        from .tasks import link_prediction_auc, link_prediction_split
        train, pos, neg = link_prediction_split(graph, 0.1, rng)
        method = _build_method(args.method, train, args.epochs, args.seed)
        z = method.fit_transform(train)
        value = link_prediction_auc(z, pos, neg)
        metric, text = "auc", f"link-prediction AUC: {value:.4f}"
    elapsed = time.perf_counter() - start

    record = {"command": "evaluate", "task": args.task,
              "method": args.method, "dataset": args.dataset,
              "scale": args.scale, "seed": args.seed, "metric": metric,
              "value": _finite_or_null(value), "elapsed_s": elapsed}
    events.emit("evaluate", **record)
    if getattr(args, "json", False):
        print(_strict_json(record))
    else:
        print(text)
    return 0


def cmd_profile(args) -> int:
    """Fit a model on a synthetic graph under full observability.

    Prints the per-op autograd table and the span tree; the table's
    total is the profiled share of the traced ``fit`` span (reported as
    coverage so regressions in un-profiled code stand out).
    """
    from .nn import backend as kernel_backend
    from .obs import metrics, profile as op_profile, trace
    from .parallel import resolve_workers
    graph = _load(args)
    method = _build_method(args.method, graph, args.epochs, args.seed)
    workers = resolve_workers()
    tracer = trace.Tracer()
    kernel_backend.reset_op_counts()
    registry = metrics.registry()
    sample_counters = ("aneci.epochs", "sample.nodes", "sample.edges",
                       "sample.negatives", "workspace.dense_skipped")
    before = {name: registry.counter(name).value
              for name in sample_counters}
    with trace.activate(tracer), op_profile.profile_ops() as prof:
        method.fit(graph)
    deltas = {name: registry.counter(name).value - before[name]
              for name in sample_counters}

    fit_node = tracer.find("fit")  # aneci+ nests fits under denoise/*
    fit_s = fit_node.total_s if fit_node is not None else tracer.total_seconds()
    op_s = prof.total_seconds()
    coverage = op_s / fit_s if fit_s else 0.0
    spec = getattr(getattr(method, "config", None), "backend", None)
    backend = kernel_backend.backend_info(kernel_backend.resolve_backend(spec))
    train_mode = getattr(getattr(method, "config", None), "train_mode",
                         "full")
    epochs_run = max(deltas["aneci.epochs"], 1)
    sampling = {
        "train_mode": train_mode,
        "epochs": deltas["aneci.epochs"],
        "nodes_per_epoch": deltas["sample.nodes"] / epochs_run,
        "edges_per_epoch": deltas["sample.edges"] / epochs_run,
        "negatives_per_epoch": deltas["sample.negatives"] / epochs_run,
        "dense_targets_skipped": deltas["workspace.dense_skipped"],
        "workspace_peak_bytes": registry.gauge(
            "workspace.build.peak_bytes").value,
    }
    if getattr(args, "json", False):
        print(json.dumps({"command": "profile", "method": args.method,
                          "dataset": args.dataset, "scale": args.scale,
                          "epochs": args.epochs, "workers": workers,
                          "backend": backend, "sampling": sampling,
                          "profile": prof.to_dict(),
                          "spans": tracer.to_dict(),
                          "fit_s": fit_s, "op_coverage": coverage}))
        return 0
    print(f"profiled {args.method} on {graph.name} "
          f"({graph.num_nodes} nodes, {args.epochs} epochs, "
          f"workers={workers})\n")
    print(prof.report(top=args.top))
    print(f"\ntraced wall time: {fit_s:.4f}s   "
          f"op coverage: {100.0 * coverage:.1f}%\n")
    dispatched = {op: c for op, c in backend["ops"].items()
                  if c["fused"] or c["numpy"]}
    dispatch = "  ".join(
        f"{op}={c['fused']}f/{c['numpy']}n"
        for op, c in sorted(dispatched.items())) or "none"
    print(f"kernel backend: {backend['backend']} "
          f"(numba {'available' if backend['numba_available'] else 'absent'})"
          f"   dispatch (fused/numpy): {dispatch}")
    if train_mode == "sampled":
        print(f"train mode: sampled   per-epoch samples: "
              f"{sampling['nodes_per_epoch']:.0f} nodes, "
              f"{sampling['edges_per_epoch']:.0f} edges, "
              f"{sampling['negatives_per_epoch']:.0f} negatives   "
              f"dense targets skipped: "
              f"{sampling['dense_targets_skipped']}   "
              f"workspace peak: "
              f"{sampling['workspace_peak_bytes'] / 1e6:.1f} MB\n")
    else:
        print(f"train mode: {train_mode}\n")
    print(tracer.report())
    return 0


def cmd_experiment(args) -> int:
    from . import experiments as E
    graph = _load(args)
    runners = {
        "classification": lambda: E.run_node_classification(graph, rounds=1),
        "defense": lambda: E.run_defense_curve(graph),
        "nettack": lambda: E.run_targeted_attack(graph, attack="nettack"),
        "fga": lambda: E.run_targeted_attack(graph, attack="fga"),
        "random-attack": lambda: E.run_random_attack_curve(graph),
        "anomaly": lambda: E.run_anomaly_detection(graph),
        "community": lambda: E.run_community_detection(graph),
        "timing": lambda: E.run_timing(graph),
    }
    result = runners[args.name]()
    print(result.to_markdown())
    if args.out:
        E.write_report([result], args.out)
        print(f"report written to {args.out}")
    return 0


def cmd_obs(args) -> int:
    """Ledger browsing: list / show / diff / export / tail / regress."""
    from .obs import export, regress, store
    directory = os.environ.get("REPRO_RUN_DIR") or store.DEFAULT_RUN_DIR
    ledger = store.RunLedger(directory)
    verb = args.obs_command

    if verb == "list":
        rows = ledger.summaries()
        if getattr(args, "key", None):
            key = ledger.resolve_key(args.key)
            rows = [s for s in rows if s["key"] == key]
        if not rows:
            print(f"no runs recorded under {directory}")
            return 0
        print(f"{'seq':>4}  {'kind':<10}  {'key':<32}  {'elapsed':>9}  "
              f"{'regr':>4}  final")
        for s in rows:
            elapsed = f"{s['elapsed_s']:.3f}s" if s.get("elapsed_s") \
                is not None else "-"
            final = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(s["final"].items())
                if isinstance(v, (int, float)))[:60] or "-"
            flag = s["regressions"] or ("ERR" if s.get("error") else "")
            print(f"{s['seq']:>4}  {s['kind'] or '-':<10}  "
                  f"{s['key']:<32}  {elapsed:>9}  {str(flag):>4}  {final}")
        return 0

    if verb == "tail":
        rows = ledger.summaries()[-max(args.lines, 0):]
        for summary in rows:
            print(json.dumps(ledger.read_entry(summary), sort_keys=True))
        return 0

    key = ledger.resolve_key(args.key)
    entries = ledger.entries(key)

    def by_seq(seq):
        for entry in entries:
            if entry["seq"] == seq:
                return entry
        raise KeyError(f"key {key!r} has no entry with seq {seq} "
                       f"(known: {[e['seq'] for e in entries]})")

    if verb == "show":
        entry = entries[-1] if args.seq is None else by_seq(args.seq)
        print(json.dumps(entry, indent=2, sort_keys=True))
        return 0

    if verb == "export":
        entry = entries[-1] if args.seq is None else by_seq(args.seq)
        os.makedirs(args.out, exist_ok=True)
        stem = os.path.join(
            args.out,
            f"{_slug(key)}-{entry['seq']}")
        written = []
        if args.format in ("chrome", "both"):
            written.append(export.write_chrome_trace(
                f"{stem}.trace.json", entry.get("spans") or {}))
        if args.format in ("prom", "both"):
            written.append(export.write_prometheus(
                f"{stem}.prom", entry.get("metrics") or {}))
        for path in written:
            print(f"wrote {path}")
        return 0

    if verb in ("diff", "regress"):
        if verb == "diff":
            current = entries[-1] if args.b is None else by_seq(args.b)
            baseline = by_seq(args.a) if args.a is not None else (
                entries[-2] if len(entries) > 1 else None)
        else:
            current, baseline = entries[-1], (
                entries[-2] if len(entries) > 1 else None)
        if baseline is None:
            print(f"key {key!r} has a single entry — nothing to compare")
            return 2
        diff = regress.compare_runs(baseline, current)
        findings = regress.detect(current, baseline)
        if verb == "diff" and args.json:
            print(_strict_json({"key": key, "a": baseline["seq"],
                                "b": current["seq"], "diff": diff,
                                "findings": findings}))
            return 0
        print(f"{key}: seq {baseline['seq']} (baseline) vs "
              f"seq {current['seq']}")
        for name, row in diff["final"].items():
            if row.get("a") is None or row.get("b") is None:
                continue
            print(f"  {name:<28} {row['a']:>12.6g} -> {row['b']:>12.6g}  "
                  f"({row['delta']:+.4g})")
        for label in ("elapsed_s", "epoch_s"):
            row = diff[label]
            if row["a"] is not None and row["b"] is not None:
                ratio = f"{row['ratio']:.2f}x" if row["ratio"] else "-"
                print(f"  {label:<28} {row['a']:>12.4g} -> "
                      f"{row['b']:>12.4g}  ({ratio})")
        curve = diff["curve"]
        if curve["compared"]:
            print(f"  loss curve: {curve['compared']} shared epochs, "
                  f"max |Δ| {curve['max_abs_diff']:.3g}")
        if findings:
            print(f"\n{len(findings)} regression finding(s):")
            for finding in findings:
                print(f"  [{finding['check']}] {finding['detail']}")
        else:
            print("\nno regressions detected")
        if verb == "regress" and args.strict and findings:
            return 3
        return 0

    raise AssertionError(f"unhandled obs verb {verb!r}")


def cmd_serve(args) -> int:
    """Serving layer verbs: export / query / run."""
    verb = args.serve_command

    if verb == "export":
        from .obs import events
        graph = _load(args)
        method = _build_method(args.method, graph, args.epochs, args.seed)
        if not hasattr(method, "export_serving"):
            print(f"method {args.method!r} does not support serving export",
                  file=sys.stderr)
            return 2
        start = time.perf_counter()
        method.fit(graph)
        version = method.export_serving(args.store)
        elapsed = time.perf_counter() - start
        record = {"command": "serve-export", "method": args.method,
                  "dataset": args.dataset, "scale": args.scale,
                  "seed": args.seed, "store": str(args.store),
                  "version": version, "elapsed_s": elapsed}
        events.emit("serve_export", **record)
        if getattr(args, "json", False):
            print(_strict_json(record))
        else:
            print(f"published version {version} to {args.store}")
        return 0

    if verb == "query":
        from .serve import EmbeddingStore, build_index, retry_call

        def _answer():
            # The whole load→index→query pipeline retries as one unit:
            # a transient fault (e.g. an injected shard_corrupt_read)
            # reloads the store, which falls back down the version
            # pointer history if the newest shards really are damaged.
            serving = EmbeddingStore(args.store).load()
            index = build_index(serving, args.index)
            if args.vector is not None:
                vector = np.asarray(
                    [float(v) for v in args.vector.split(",")])
                ids, scores = index.query_vector(vector, args.k)
                mode = "vector"
            elif args.node is not None:
                query = (index.same_community if args.mode == "community"
                         else index.similar_nodes)
                ids, scores = query(args.node, args.k)
                mode = args.mode
            else:
                return None
            return serving, index, mode, ids, scores

        answer = retry_call(_answer, retries=max(0, args.retries),
                            base_s=max(0.0, args.retry_base_ms) / 1000.0)
        if answer is None:
            print("serve query needs --node or --vector", file=sys.stderr)
            return 2
        serving, index, mode, ids, scores = answer
        record = {"command": "serve-query", "store": str(args.store),
                  "version": serving.version, "index": index.name,
                  "mode": mode, "node": args.node, "k": args.k,
                  "ids": ids, "scores": scores}
        if getattr(args, "json", False):
            print(_strict_json(record))
        else:
            print(f"store {args.store} version {serving.version} "
                  f"({index.name} index, {mode})")
            for node_id, score in zip(ids.tolist(), scores.tolist()):
                print(f"  {node_id:>10d}  {score:.6f}")
        return 0

    if verb == "run":
        import asyncio
        import signal
        from .serve import EmbeddingServer

        async def _run() -> None:
            server = EmbeddingServer(args.store, host=args.host,
                                     port=args.port, index_spec=args.index,
                                     queue_limit=args.queue,
                                     deadline_ms=args.deadline_ms)
            await server.start()
            print(f"serving {args.store} version {server.serving.version} "
                  f"({server.index.name} index) on "
                  f"http://{server.host}:{server.port}", flush=True)
            done = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, done.set)
                except (NotImplementedError, RuntimeError):
                    pass  # non-Unix loop: fall back to KeyboardInterrupt
            serving_task = asyncio.create_task(server.serve_forever())
            waiter = asyncio.create_task(done.wait())
            try:
                await asyncio.wait({serving_task, waiter},
                                   return_when=asyncio.FIRST_COMPLETED)
            finally:
                serving_task.cancel()
                waiter.cancel()
                print("draining...", flush=True)
                # Graceful drain: finish in-flight requests, flush the
                # run-ledger entry, then exit.
                await server.stop()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            pass
        return 0

    raise AssertionError(f"unhandled serve verb {verb!r}")


def _slug(key: str) -> str:
    """Filesystem-safe stem for export files derived from a run key."""
    import re
    return re.sub(r"[^A-Za-z0-9._-]+", "_", key)


@contextlib.contextmanager
def _observability(args):
    """Install the ``--trace`` / ``--profile`` globals for one command.

    ``--trace PATH`` activates a tracer and streams every event-bus
    record to ``PATH`` as JSONL, appending final ``trace`` (span tree)
    and ``metrics`` (registry snapshot) records on exit.  ``--profile``
    wraps the run in an op profiler and prints its table afterwards.
    """
    from .obs import events, metrics, profile as op_profile, trace
    sink = unsubscribe = tracer = profiler = None
    if getattr(args, "trace", None):
        sink = events.JsonlSink(args.trace)
        unsubscribe = events.BUS.subscribe(sink)
        tracer = trace.Tracer()
        trace.set_tracer(tracer)
    if getattr(args, "profile", False) and args.command != "profile":
        profiler = op_profile.OpProfiler().enable()
    try:
        yield
    finally:
        if profiler is not None:
            profiler.disable()
            print("\nper-op autograd profile:", file=sys.stderr)
            print(profiler.report(), file=sys.stderr)
        if sink is not None:
            trace.set_tracer(None)
            sink({"kind": "trace", "spans": tracer.to_dict(),
                  "total_s": tracer.total_seconds()})
            sink({"kind": "metrics", "values": metrics.registry().snapshot()})
            unsubscribe()
            sink.close()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers is not None:
        # The env var is how worker counts thread through every layer
        # (fit restarts, grid search, runners) without changing each
        # call signature on the way down.
        os.environ["REPRO_WORKERS"] = str(args.workers)
    if args.dtype is not None:
        # Same pattern as --workers: every AnECIConfig built downstream
        # (including in worker processes) reads REPRO_DTYPE as its
        # default precision.
        os.environ["REPRO_DTYPE"] = args.dtype
    if args.backend is not None:
        # Same pattern again: every AnECIConfig built downstream reads
        # REPRO_BACKEND as its default kernel backend; bit-identical by
        # contract, so this only changes speed.
        os.environ["REPRO_BACKEND"] = args.backend
    if args.train_mode is not None:
        # Same pattern: every AnECIConfig built downstream (including in
        # worker processes) reads REPRO_TRAIN_MODE as its default
        # training regime.
        os.environ["REPRO_TRAIN_MODE"] = args.train_mode
    if args.checkpoint_dir is not None:
        # And again: every fit the command triggers — any method, any
        # nesting depth, any worker process — checkpoints under this
        # directory, namespaced by its own content-derived run key.
        os.environ["REPRO_CHECKPOINT_DIR"] = args.checkpoint_dir
    if args.run_dir is not None:
        # Every ledger hook downstream — fits, denoise passes, experiment
        # runners, worker processes — reads REPRO_RUN_DIR, so one flag
        # turns recording on for the whole command.
        os.environ["REPRO_RUN_DIR"] = args.run_dir
    handler = {
        "datasets": cmd_datasets,
        "generate": cmd_generate,
        "embed": cmd_embed,
        "attack": cmd_attack,
        "evaluate": cmd_evaluate,
        "experiment": cmd_experiment,
        "profile": cmd_profile,
        "obs": cmd_obs,
        "serve": cmd_serve,
    }[args.command]
    with _observability(args):
        return handler(args)


if __name__ == "__main__":
    sys.exit(main())
