"""Command-line interface: ``python -m repro <command>``.

Commands
--------
datasets
    List the calibrated benchmark datasets and their Table II statistics.
generate
    Generate a dataset and save it as ``.npz`` (see ``repro.graph.io``).
embed
    Train an embedding method on a dataset and save the embedding.
attack
    Poison a dataset with one of the implemented attacks and save it.
evaluate
    Run one downstream task (classification / anomaly / community /
    link-prediction) for a method on a dataset and print the metric.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AnECI reproduction toolkit (ICDE 2022)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list calibrated benchmark datasets")

    gen = sub.add_parser("generate", help="generate a dataset to .npz")
    _dataset_args(gen)
    gen.add_argument("--out", required=True, help="output .npz path")

    emb = sub.add_parser("embed", help="train a method, save the embedding")
    _dataset_args(emb)
    emb.add_argument("--method", default="aneci",
                     help="aneci, aneci+ or a registered baseline name")
    emb.add_argument("--epochs", type=int, default=None)
    emb.add_argument("--out", required=True, help="output .npy path")

    att = sub.add_parser("attack", help="poison a dataset, save to .npz")
    _dataset_args(att)
    att.add_argument("--attack", choices=["random", "dice"],
                     default="random")
    att.add_argument("--rate", type=float, default=0.2,
                     help="perturbation rate (fraction of |E|)")
    att.add_argument("--out", required=True, help="output .npz path")

    ev = sub.add_parser("evaluate", help="run a downstream task")
    _dataset_args(ev)
    ev.add_argument("--method", default="aneci")
    ev.add_argument("--task", required=True,
                    choices=["classification", "anomaly", "community",
                             "link-prediction"])
    ev.add_argument("--epochs", type=int, default=None)

    ex = sub.add_parser(
        "experiment", help="regenerate one of the paper's artefacts")
    _dataset_args(ex)
    ex.add_argument("name", choices=[
        "classification", "defense", "nettack", "fga", "random-attack",
        "anomaly", "community", "timing"])
    ex.add_argument("--out", default=None,
                    help="optional path for a markdown report")
    return parser


def _dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cora",
                        help="cora / citeseer / polblogs / pubmed")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=0)


def _load(args):
    from .graph import load_dataset
    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _build_method(name: str, graph, epochs: int | None, seed: int):
    """Instantiate AnECI, AnECI+ or any registered baseline by name."""
    from . import baselines
    from .core import AnECI, AnECIPlus
    lowered = name.lower()
    extra = {"epochs": epochs} if epochs else {}
    if lowered == "aneci":
        return AnECI(graph.num_features, num_communities=graph.num_classes,
                     seed=seed, **extra)
    if lowered in ("aneci+", "aneciplus"):
        return AnECIPlus(graph.num_features,
                         num_communities=graph.num_classes, seed=seed,
                         **extra)
    kwargs = dict(extra)
    if lowered in ("vgraph", "come"):
        kwargs = {"num_communities": graph.num_classes}
    return baselines.get_method(lowered, seed=seed, **kwargs)


def cmd_datasets(_args) -> int:
    from .graph.datasets import DATASETS
    print(f"{'name':10s} {'N':>6s} {'M':>6s} {'classes':>8s} {'d':>6s} "
          f"{'mixing':>7s}")
    for spec in DATASETS.values():
        d = spec.num_features if spec.num_features else "(id)"
        print(f"{spec.name:10s} {spec.num_nodes:>6d} {spec.num_edges:>6d} "
              f"{spec.num_classes:>8d} {str(d):>6s} {spec.mixing:>7.2f}")
    return 0


def cmd_generate(args) -> int:
    from .graph.io import save_graph
    graph = _load(args)
    save_graph(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def cmd_embed(args) -> int:
    graph = _load(args)
    method = _build_method(args.method, graph, args.epochs, args.seed)
    embedding = method.fit_transform(graph)
    np.save(args.out, embedding)
    print(f"wrote {embedding.shape} embedding to {args.out}")
    return 0


def cmd_attack(args) -> int:
    from .attacks import DICE, RandomAttack
    from .graph.io import save_graph
    graph = _load(args)
    attack = (RandomAttack(args.rate, seed=args.seed) if args.attack == "random"
              else DICE(args.rate, seed=args.seed))
    result = attack.attack(graph)
    save_graph(result.graph, args.out)
    print(f"{args.attack} attack: +{len(result.added_edges)} edges, "
          f"-{len(result.removed_edges)} edges -> {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    graph = _load(args)
    method = _build_method(args.method, graph, args.epochs, args.seed)
    rng = np.random.default_rng(args.seed)

    if args.task == "classification":
        from .tasks import evaluate_embedding
        acc = evaluate_embedding(method.fit_transform(graph), graph)
        print(f"classification accuracy: {acc:.4f}")
    elif args.task == "anomaly":
        from .anomalies import seed_outliers
        from .tasks import anomaly_auc, isolation_forest_scores
        augmented, mask = seed_outliers(graph, rng, fraction=0.05,
                                        kind="mix")
        method = _build_method(args.method, augmented, args.epochs, args.seed)
        method.fit(augmented)
        scores = method.anomaly_scores() if hasattr(method, "anomaly_scores") \
            else None
        if scores is None:
            scores = isolation_forest_scores(method.embed(), seed=args.seed)
        print(f"anomaly AUC: {anomaly_auc(mask, scores):.4f}")
    elif args.task == "community":
        from .core import newman_modularity
        from .tasks import communities_from_embedding
        method.fit(graph)
        if hasattr(method, "assign_communities"):
            communities = method.assign_communities()
        else:
            communities = communities_from_embedding(
                method.embed(), graph.num_classes, seed=args.seed)
        print(f"modularity: "
              f"{newman_modularity(graph.adjacency, communities):.4f}")
    else:  # link-prediction
        from .tasks import link_prediction_auc, link_prediction_split
        train, pos, neg = link_prediction_split(graph, 0.1, rng)
        method = _build_method(args.method, train, args.epochs, args.seed)
        z = method.fit_transform(train)
        print(f"link-prediction AUC: "
              f"{link_prediction_auc(z, pos, neg):.4f}")
    return 0


def cmd_experiment(args) -> int:
    from . import experiments as E
    graph = _load(args)
    runners = {
        "classification": lambda: E.run_node_classification(graph, rounds=1),
        "defense": lambda: E.run_defense_curve(graph),
        "nettack": lambda: E.run_targeted_attack(graph, attack="nettack"),
        "fga": lambda: E.run_targeted_attack(graph, attack="fga"),
        "random-attack": lambda: E.run_random_attack_curve(graph),
        "anomaly": lambda: E.run_anomaly_detection(graph),
        "community": lambda: E.run_community_detection(graph),
        "timing": lambda: E.run_timing(graph),
    }
    result = runners[args.name]()
    print(result.to_markdown())
    if args.out:
        E.write_report([result], args.out)
        print(f"report written to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "datasets": cmd_datasets,
        "generate": cmd_generate,
        "embed": cmd_embed,
        "attack": cmd_attack,
        "evaluate": cmd_evaluate,
        "experiment": cmd_experiment,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
