"""K-means with k-means++ seeding (Arthur & Vassilvitskii, 2007).

Used to cluster baseline embeddings for the community-detection task
(Section VI-D) exactly as the paper does.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans", "kmeans_plusplus_init"]


def kmeans_plusplus_init(points: np.ndarray, k: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Choose ``k`` initial centroids by D² weighting."""
    n = points.shape[0]
    if k > n:
        raise ValueError(f"cannot place {k} centroids among {n} points")
    centroids = np.empty((k, points.shape[1]))
    first = rng.integers(n)
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick randomly.
            choice = rng.integers(n)
        else:
            choice = rng.choice(n, p=closest_sq / total)
        centroids[i] = points[choice]
        dist_sq = np.sum((points - centroids[i]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centroids


def kmeans(points: np.ndarray, k: int, rng: np.random.Generator,
           max_iter: int = 100, tol: float = 1e-7,
           n_init: int = 1) -> tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's algorithm with k-means++ seeding.

    Returns ``(labels, centroids, inertia)`` of the best of ``n_init``
    restarts.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D")
    best: tuple[np.ndarray, np.ndarray, float] | None = None
    for _ in range(max(1, n_init)):
        labels, centroids, inertia = _kmeans_once(points, k, rng, max_iter, tol)
        if best is None or inertia < best[2]:
            best = (labels, centroids, inertia)
    return best


def _kmeans_once(points, k, rng, max_iter, tol):
    centroids = kmeans_plusplus_init(points, k, rng)
    labels = np.zeros(points.shape[0], dtype=np.int64)
    previous_inertia = np.inf
    for _ in range(max_iter):
        distances = _pairwise_sq(points, centroids)
        labels = distances.argmin(axis=1)
        inertia = float(distances[np.arange(points.shape[0]), labels].sum())
        for c in range(k):
            members = points[labels == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point.
                farthest = distances.min(axis=1).argmax()
                centroids[c] = points[farthest]
        if previous_inertia - inertia < tol:
            break
        previous_inertia = inertia
    distances = _pairwise_sq(points, centroids)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(points.shape[0]), labels].sum())
    return labels, centroids, inertia


def _pairwise_sq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (np.sum(a ** 2, axis=1)[:, None]
            - 2.0 * a @ b.T + np.sum(b ** 2, axis=1)[None, :])
