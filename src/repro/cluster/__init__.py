"""Clustering substrates: k-means++ and a diagonal Gaussian mixture."""

from .gmm import GaussianMixture
from .kmeans import kmeans, kmeans_plusplus_init

__all__ = ["kmeans", "kmeans_plusplus_init", "GaussianMixture"]
