"""Diagonal-covariance Gaussian mixture fitted by EM.

ComE models each community as a Gaussian in embedding space; this module
supplies that substrate.
"""

from __future__ import annotations

import numpy as np

from .kmeans import kmeans

__all__ = ["GaussianMixture"]


class GaussianMixture:
    """EM-fitted mixture of diagonal Gaussians.

    Attributes (after :meth:`fit`)
    ------------------------------
    means_ : (k, d) component means
    variances_ : (k, d) diagonal variances
    weights_ : (k,) mixing proportions
    """

    def __init__(self, n_components: int, rng: np.random.Generator,
                 max_iter: int = 100, tol: float = 1e-5,
                 reg_covar: float = 1e-6):
        if n_components < 1:
            raise ValueError("need at least one component")
        self.k = n_components
        self.rng = rng
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None
        self.weights_: np.ndarray | None = None
        self.log_likelihood_: float = -np.inf

    def fit(self, points: np.ndarray) -> "GaussianMixture":
        points = np.asarray(points, dtype=np.float64)
        n, d = points.shape
        labels, centroids, _ = kmeans(points, self.k, self.rng)
        self.means_ = centroids.copy()
        self.variances_ = np.full((self.k, d), points.var(axis=0) + self.reg_covar)
        self.weights_ = np.bincount(labels, minlength=self.k) / n
        self.weights_ = np.maximum(self.weights_, 1e-8)
        self.weights_ /= self.weights_.sum()

        previous = -np.inf
        for _ in range(self.max_iter):
            resp, log_likelihood = self._e_step(points)
            self._m_step(points, resp)
            self.log_likelihood_ = log_likelihood
            if log_likelihood - previous < self.tol:
                break
            previous = log_likelihood
        return self

    def predict_proba(self, points: np.ndarray) -> np.ndarray:
        resp, _ = self._e_step(np.asarray(points, dtype=np.float64))
        return resp

    def predict(self, points: np.ndarray) -> np.ndarray:
        return self.predict_proba(points).argmax(axis=1)

    # ------------------------------------------------------------------ #
    def _log_prob(self, points: np.ndarray) -> np.ndarray:
        """(n, k) log N(x | μ_k, diag σ²_k) + log π_k."""
        n, d = points.shape
        log_probs = np.empty((n, self.k))
        for c in range(self.k):
            var = self.variances_[c]
            diff = points - self.means_[c]
            log_probs[:, c] = (
                -0.5 * (np.sum(diff ** 2 / var, axis=1)
                        + np.sum(np.log(2 * np.pi * var))))
        return log_probs + np.log(self.weights_)

    def _e_step(self, points: np.ndarray) -> tuple[np.ndarray, float]:
        log_probs = self._log_prob(points)
        max_log = log_probs.max(axis=1, keepdims=True)
        log_norm = max_log + np.log(
            np.exp(log_probs - max_log).sum(axis=1, keepdims=True))
        resp = np.exp(log_probs - log_norm)
        return resp, float(log_norm.sum())

    def _m_step(self, points: np.ndarray, resp: np.ndarray) -> None:
        counts = resp.sum(axis=0) + 1e-12
        self.weights_ = counts / counts.sum()
        self.means_ = (resp.T @ points) / counts[:, None]
        for c in range(self.k):
            diff = points - self.means_[c]
            self.variances_[c] = (resp[:, c] @ (diff ** 2)) / counts[c]
        self.variances_ = np.maximum(self.variances_, self.reg_covar)
