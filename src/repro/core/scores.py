"""Scoring functions from Section VI-B: edge anomaly, defense score, rigidity.

These are evaluation/diagnostic quantities computed on finished embeddings,
so everything here is plain numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["edge_anomaly_scores", "defense_score", "rigidity",
           "membership_entropy_scores", "community_attribute_scores",
           "community_anomaly_scores"]


def edge_anomaly_scores(embedding: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Cosine anomaly score ``s(e) = 1 − cos(zᵢ, zⱼ)`` per edge.

    A higher score means the edge connects dissimilar embeddings, i.e. the
    edge had *less* influence on the representation.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    edges = np.asarray(edges)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be an (M, 2) array")
    z_i = embedding[edges[:, 0]]
    z_j = embedding[edges[:, 1]]
    norms = (np.linalg.norm(z_i, axis=1) * np.linalg.norm(z_j, axis=1))
    norms = np.maximum(norms, 1e-12)
    cosine = np.sum(z_i * z_j, axis=1) / norms
    return 1.0 - cosine


def defense_score(embedding: np.ndarray, clean_edges: np.ndarray,
                  fake_edges: np.ndarray) -> float:
    """Defense score ``DS(δ)`` from Section VI-B1.

    With ``|E*| = δ|E|`` the paper's expression
    ``Σ_{e∈E*} s(e) / (δ Σ_{e∈E} s(e))`` is exactly the ratio of the mean
    anomaly score of fake edges to that of clean edges, which is what we
    compute (robust to either edge set being passed at any size).
    """
    clean_edges = np.asarray(clean_edges)
    fake_edges = np.asarray(fake_edges)
    if fake_edges.size == 0:
        raise ValueError("no fake edges supplied")
    clean_scores = edge_anomaly_scores(embedding, clean_edges)
    fake_scores = edge_anomaly_scores(embedding, fake_edges)
    denominator = clean_scores.mean()
    if denominator <= 0:
        return float("inf") if fake_scores.mean() > 0 else 1.0
    return float(fake_scores.mean() / denominator)


def rigidity(membership: np.ndarray) -> float:
    """Hard-partition index ``tr(PᵀP)/N`` (Section VI-E3, Fig. 9b).

    Equals 1 exactly when every row of ``P`` is one-hot; strictly smaller
    for overlapped (soft) community structure.
    """
    membership = np.asarray(membership, dtype=np.float64)
    n = membership.shape[0]
    return float(np.sum(membership * membership) / n)


def membership_entropy_scores(membership: np.ndarray) -> np.ndarray:
    """Structural anomaly score from community membership (Eq. 19).

    The printed equation in the paper is garbled; its cited source scores a
    node by how *uncommitted* its membership vector is.  We use the Shannon
    entropy of ``pᵢ``: anomalous nodes straddle communities (high entropy),
    normal nodes commit to one (low entropy).
    """
    membership = np.asarray(membership, dtype=np.float64)
    clipped = np.clip(membership, 1e-12, 1.0)
    return -np.sum(clipped * np.log(clipped), axis=1)


def community_attribute_scores(membership: np.ndarray,
                               features: np.ndarray) -> np.ndarray:
    """Attribute anomaly score: distance to the community feature profile.

    Each community's attribute centroid is the membership-weighted mean of
    the feature matrix; a node is suspicious when its own attributes are
    far (cosine) from the profile its membership predicts.  This is the
    attribute-side complement of :func:`membership_entropy_scores` —
    structural outliers break the membership, attribute outliers break
    the community's feature signature.
    """
    membership = np.asarray(membership, dtype=np.float64)
    features = np.asarray(features, dtype=np.float64)
    if membership.shape[0] != features.shape[0]:
        raise ValueError("membership and features must cover the same nodes")
    mass = membership.sum(axis=0)[:, None] + 1e-12
    centroids = (membership.T @ features) / mass
    expected = membership @ centroids
    inner = np.sum(features * expected, axis=1)
    norms = (np.linalg.norm(features, axis=1)
             * np.linalg.norm(expected, axis=1))
    return 1.0 - inner / np.maximum(norms, 1e-12)


def community_anomaly_scores(membership: np.ndarray,
                             features: np.ndarray | None = None) -> np.ndarray:
    """AnECI's node anomaly score (our concretisation of Eq. 19).

    Sum of standardised membership entropy and (when features are given)
    standardised community-attribute inconsistency, covering the
    structural, attribute and combined outlier types of Section V-C.
    """
    entropy = _standardize(membership_entropy_scores(membership))
    if features is None:
        return entropy
    return entropy + _standardize(
        community_attribute_scores(membership, features))


def _standardize(values: np.ndarray) -> np.ndarray:
    return (values - values.mean()) / (values.std() + 1e-12)
