"""Content-addressed cache of the epoch-invariant AnECI fit constants.

Every AnECI fit starts by rebuilding the same set of constants: the
GCN-normalised adjacency, the high-order proximity ``Ã``, the modularity
terms ``(Ã, k̃, 2M̃)`` and the densified reconstruction target.  All of it
depends only on the graph structure plus a handful of config knobs — not
on the seed — so ``n_init`` restarts, AnECI+ stage 2 on an unchanged
graph, and repeated experiment fits redo identical O(N²)/sparse-power
work.  :class:`FitWorkspace` bundles those constants and
:class:`WorkspaceCache` keys them by a fingerprint over the CSR arrays
(``indptr``/``indices``/``data``) and the relevant knobs, so any
structural mutation — attack edges, denoising drops — is a guaranteed
cache miss while bit-identical graphs hit.

Cache traffic is observable through the ``workspace.hits`` /
``workspace.misses`` / ``workspace.evictions`` counters in
:func:`repro.obs.metrics.registry` and a ``workspace`` event per build.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..graph.graph import Graph, normalized_adjacency
from ..graph.proximity import high_order_proximity, katz_proximity
from ..nn.autograd import cached_transpose
from ..nn.backend import NeighborSampler, NodeSampler
from ..nn.backend import active as _active_backend
from ..obs import events, metrics, trace
from .config import AnECIConfig
from .modularity import modularity_loss_terms

__all__ = [
    "FitWorkspace", "WorkspaceCache", "get_workspace", "workspace_cache",
    "cache_disabled", "fit_fingerprint", "dense_gather_cap",
    "default_cache_size",
]

def dense_gather_cap() -> int:
    """Densify the reconstruction target eagerly only below this node
    count; above it the sampled path gathers blocks from the sparse
    matrix.  At the default cap a dense target tops out at ~128 MB of
    float64 (half that in float32).  Read from the environment on every
    build so tests and long-lived processes can retune it."""
    return int(os.environ.get("REPRO_WORKSPACE_DENSE_CAP", "4096"))


def default_cache_size() -> int:
    """Upper bound on cached workspaces (each can hold a dense N×N
    target); read from ``REPRO_WORKSPACE_CACHE_SIZE`` at cache
    construction time."""
    return int(os.environ.get("REPRO_WORKSPACE_CACHE_SIZE", "4"))


_CACHE_ENABLED = True


def fit_fingerprint(adjacency: sp.csr_matrix, knobs: tuple) -> str:
    """Digest of the exact CSR arrays plus the proximity/target knobs."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(knobs).encode())
    digest.update(repr(adjacency.shape).encode())
    digest.update(adjacency.indptr.tobytes())
    digest.update(adjacency.indices.tobytes())
    digest.update(adjacency.data.tobytes())
    return digest.hexdigest()


def _config_knobs(config: AnECIConfig) -> tuple:
    """The config fields the workspace constants depend on."""
    weights = config.proximity_weights
    return (config.proximity_kind, config.order,
            None if weights is None else tuple(weights),
            config.katz_beta, config.recon_target, config.recon_sample_size,
            config.dtype, config.train_mode)


@dataclass
class FitWorkspace:
    """Epoch-invariant constants shared by every restart of one fit.

    Attributes
    ----------
    fingerprint:
        Content address this workspace was cached under.
    dtype:
        Numeric precision of the training-path constants (``adj_norm``,
        ``prox``, ``degrees``, ``recon_target``, ``recon_dense``) —
        follows ``config.dtype`` and is part of the cache key, so a
        float32 and a float64 fit of the same graph hold separate
        workspaces.  ``proximity`` always stays float64 (it is the
        analysis-grade matrix AnECI+ denoising reads).
    adj_norm:
        GCN-normalised adjacency; its CSR transpose is pre-registered in
        the :func:`repro.nn.spmm` transpose cache.
    proximity / prox / degrees / two_m:
        High-order proximity ``Ã`` and the modularity terms ``(Ã, k̃, 2M̃)``.
    recon_target:
        Sparse reconstruction target (``Ã`` or the first-order variant).
    sample_nodes:
        Per-epoch sample size, or ``None`` when the full ``N×N`` target
        is reconstructed.
    recon_dense:
        Densified ``recon_target`` when affordable (always for the full
        path, below ``REPRO_WORKSPACE_DENSE_CAP`` nodes for the sampled
        path); ``None`` means blocks are gathered from the sparse form.
    lazy_dense:
        ``True`` when the workspace was built for ``train_mode="sampled"``:
        the dense target is *never* materialised — not even below
        ``dense_gather_cap()`` — and every consumer slices CSR blocks.
        Each skipped densification increments the
        ``workspace.dense_skipped`` counter and records the avoided byte
        count in the ``workspace.dense_skipped_bytes`` gauge.
    """

    fingerprint: str
    num_nodes: int
    adj_norm: sp.csr_matrix
    proximity: sp.csr_matrix
    prox: sp.csr_matrix
    degrees: np.ndarray
    two_m: float
    recon_target: sp.csr_matrix
    sample_nodes: int | None
    recon_dense: np.ndarray | None
    dtype: np.dtype = np.dtype(np.float64)
    lazy_dense: bool = False
    #: Lazily built preallocated-buffer sampler for the sampled
    #: reconstruction path (see :class:`repro.nn.backend.NodeSampler`).
    sampler: NodeSampler | None = None

    def __post_init__(self):
        self._prox_diag: np.ndarray | None = None
        self._batch_samplers: dict[int, NodeSampler] = {}
        self._neighbor_samplers: dict[int, NeighborSampler] = {}

    def prox_diagonal(self) -> np.ndarray:
        """Cached diagonal of the proximity (sampled modularity needs it
        to reweight self-pairs separately from cross pairs)."""
        if self._prox_diag is None:
            self._prox_diag = np.asarray(self.prox.diagonal())
        return self._prox_diag

    def batch_indices(self, rng: np.random.Generator, k: int) -> np.ndarray:
        """Sorted without-replacement node batch of size ``k``.

        Drawn through the same backend-dispatched
        :class:`~repro.nn.backend.NodeSampler` machinery as
        :meth:`sample_indices`, so the sampled-mode batch stream is
        bit-identical across backends, dtypes and worker counts.
        Returns ``arange(n)`` (consuming no randomness) when ``k`` covers
        the whole graph.
        """
        if k >= self.num_nodes:
            return np.arange(self.num_nodes, dtype=np.int64)
        sampler = self._batch_samplers.get(k)
        if sampler is None:
            sampler = self._batch_samplers[k] = NodeSampler(self.num_nodes, k)
        idx = _active_backend().sample_without_replacement(sampler, rng)
        return np.sort(np.asarray(idx, dtype=np.int64))

    def neighbor_sampler(self, fanout: int) -> NeighborSampler:
        """Cached fanout-bounded neighbor sampler over ``adj_norm``."""
        sampler = self._neighbor_samplers.get(fanout)
        if sampler is None:
            sampler = NeighborSampler(self.adj_norm, fanout)
            self._neighbor_samplers[fanout] = sampler
        return sampler

    def recon_block(self, idx: np.ndarray) -> sp.csr_matrix:
        """Sparse ``idx × idx`` block of the reconstruction target with
        sorted indices (the sampled estimator binary-searches them)."""
        block = self.recon_target[idx][:, idx].tocsr()
        block.sort_indices()
        return block

    def dense_target(self) -> np.ndarray:
        """The full dense reconstruction target (full-graph path only)."""
        if self.recon_dense is None:
            raise RuntimeError("workspace holds no dense target; use "
                               "target_block() on the sampled path")
        return self.recon_dense

    def target_block(self, idx: np.ndarray) -> np.ndarray:
        """Dense ``idx × idx`` block of the reconstruction target.

        Uses the precomputed dense form when available — a fancy-indexed
        gather instead of the double sparse slice-and-densify the
        training loop used to run every epoch.
        """
        if self.recon_dense is not None:
            return self.recon_dense[np.ix_(idx, idx)]
        return self.recon_target[idx][:, idx].toarray()

    def sample_indices(self, rng: np.random.Generator) -> np.ndarray:
        """Per-epoch node sample for the sampled reconstruction path.

        Dispatches through the active kernel backend: the numpy backend
        calls ``rng.choice(n, size=k, replace=False)`` exactly as the
        training loop always has; the compiled backend consumes the
        identical bit-stream through the workspace's preallocated
        :class:`~repro.nn.backend.NodeSampler` buffers (self-verified,
        falling back to ``rng.choice`` on any mismatch).  Either way the
        index stream — and the generator state after it — is
        bit-identical.
        """
        if self.sample_nodes is None:
            raise RuntimeError("workspace has no sampled path")
        if self.sampler is None:
            self.sampler = NodeSampler(self.num_nodes, self.sample_nodes)
        return _active_backend().sample_without_replacement(self.sampler, rng)


def build_workspace(graph: Graph, config: AnECIConfig,
                    fingerprint: str = "") -> FitWorkspace:
    """Compute every epoch-invariant constant for ``(graph, config)``."""
    with trace.span("workspace/build"), \
            metrics.track_peak_memory("workspace.build"):
        dtype = np.dtype(config.dtype)
        adj_norm = normalized_adjacency(graph.adjacency)
        if config.proximity_kind == "katz":
            proximity = katz_proximity(graph.adjacency, beta=config.katz_beta,
                                       order=config.order, self_loops=True)
        else:
            proximity = high_order_proximity(graph.adjacency,
                                             order=config.order,
                                             weights=config.proximity_weights)
        prox, degrees, two_m = modularity_loss_terms(proximity)
        if config.recon_target == "first_order":
            recon_target = high_order_proximity(graph.adjacency, order=1)
        else:
            recon_target = prox
        if dtype != np.float64:
            # Constants are always *computed* in float64 and rounded once
            # here, so the float32 path trains against the same values
            # (to rounding) rather than accumulating low-precision
            # proximity powers.
            adj_norm = adj_norm.astype(dtype)
            shared = recon_target is prox
            prox = prox.astype(dtype)
            recon_target = prox if shared else recon_target.astype(dtype)
            degrees = degrees.astype(dtype)
        cached_transpose(adj_norm)  # pre-warm the spmm backward transposes
        cached_transpose(prox)
        n = graph.num_nodes
        sample_nodes = (config.recon_sample_size
                        if n > config.recon_sample_size else None)
        lazy_dense = config.train_mode == "sampled"
        if lazy_dense:
            # Sampled training never needs the dense N×N target — skip
            # the densification unconditionally (dense_gather_cap() does
            # not apply) and make the avoided allocation observable.
            recon_dense = None
            registry = metrics.registry()
            registry.counter("workspace.dense_skipped").inc()
            registry.gauge("workspace.dense_skipped_bytes").set(
                float(n) * float(n) * dtype.itemsize)
        elif sample_nodes is None or n <= dense_gather_cap():
            recon_dense = recon_target.toarray()
        else:
            recon_dense = None
        return FitWorkspace(
            fingerprint=fingerprint, num_nodes=n, adj_norm=adj_norm,
            proximity=proximity, prox=prox, degrees=degrees, two_m=two_m,
            recon_target=recon_target, sample_nodes=sample_nodes,
            recon_dense=recon_dense, dtype=dtype, lazy_dense=lazy_dense)


class WorkspaceCache:
    """Bounded LRU of :class:`FitWorkspace` keyed by content fingerprint."""

    def __init__(self, maxsize: int | None = None):
        self.maxsize = default_cache_size() if maxsize is None else int(maxsize)
        if self.maxsize < 1:
            raise ValueError("cache needs room for at least one workspace")
        self._entries: OrderedDict[str, FitWorkspace] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, graph: Graph, config: AnECIConfig) -> FitWorkspace:
        """Return the cached workspace for ``(graph, config)``, building on miss."""
        registry = metrics.registry()
        fingerprint = fit_fingerprint(graph.adjacency, _config_knobs(config))
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                registry.counter("workspace.hits").inc()
                return entry
        registry.counter("workspace.misses").inc()
        entry = build_workspace(graph, config, fingerprint)
        with self._lock:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                registry.counter("workspace.evictions").inc()
        events.emit("workspace", fingerprint=fingerprint,
                    nodes=graph.num_nodes, sample_nodes=entry.sample_nodes,
                    dense_target=entry.recon_dense is not None)
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries


_CACHE = WorkspaceCache()


def workspace_cache() -> WorkspaceCache:
    """The process-wide workspace cache."""
    return _CACHE


def get_workspace(graph: Graph, config: AnECIConfig) -> FitWorkspace:
    """Fetch (or build) the fit workspace through the process-wide cache.

    Inside :func:`cache_disabled` the workspace is rebuilt from scratch
    on every call — the pre-cache behaviour, kept for benchmarks and
    equivalence tests.
    """
    if not _CACHE_ENABLED:
        return build_workspace(graph, config)
    return _CACHE.get(graph, config)


@contextlib.contextmanager
def cache_disabled():
    """Bypass the workspace cache (rebuild per fit) within the block."""
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = False
    try:
        yield
    finally:
        _CACHE_ENABLED = previous
