"""The graph-convolutional attributed-network encoder (Section IV-B)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..nn import Dropout, GCNConv, Module, Tensor

__all__ = ["GCNEncoder"]


class GCNEncoder(Module):
    """Multi-layer GCN ``H^{(l+1)} = LeakyReLU(Ā H^{(l)} W^{(l)})`` (Eq. 2).

    The final layer is linear (no activation) so the output can serve both
    as the embedding ``Z`` and, after a softmax, as the community
    membership ``P``.
    """

    def __init__(self, num_features: int, dims: tuple[int, ...],
                 rng: np.random.Generator, dropout: float = 0.0,
                 negative_slope: float = 0.01, dtype=None):
        super().__init__()
        if not dims:
            raise ValueError("encoder needs at least one output dimension")
        self.negative_slope = negative_slope
        widths = [num_features, *dims]
        self.convs = [GCNConv(widths[i], widths[i + 1], rng, dtype=dtype)
                      for i in range(len(dims))]
        self.dropout = Dropout(dropout, rng) if dropout else None

    def forward(self, x: Tensor, adj_norm: sp.spmatrix) -> Tensor:
        h = x
        last = len(self.convs) - 1
        for i, conv in enumerate(self.convs):
            # Hidden layers hand the activation slope to the conv so the
            # LeakyReLU fuses into the layer's single graph node; the
            # final layer stays linear (embedding/membership head).
            h = conv(h, adj_norm,
                     negative_slope=None if i == last
                     else self.negative_slope)
            if i != last and self.dropout is not None:
                h = self.dropout(h)
        return h

    def forward_blocks(self, x: Tensor, blocks: list[sp.spmatrix]) -> Tensor:
        """Minibatch forward: one rectangular block matrix per layer.

        ``blocks[i]`` plays the role of ``adj_norm`` for layer ``i`` —
        its rows are the layer's output nodes, its columns the input
        nodes ``x`` covers (for ``i = 0``) or the previous block's rows.
        Used by the sampled training mode, where each block holds a
        fanout-bounded neighbour sample; with blocks sliced from the full
        normalised adjacency the result equals :meth:`forward` restricted
        to the final block's rows.
        """
        if len(blocks) != len(self.convs):
            raise ValueError(
                f"{len(self.convs)}-layer encoder needs one block per "
                f"layer, got {len(blocks)}")
        h = x
        last = len(self.convs) - 1
        for i, (conv, block) in enumerate(zip(self.convs, blocks)):
            h = conv(h, block,
                     negative_slope=None if i == last
                     else self.negative_slope)
            if i != last and self.dropout is not None:
                h = self.dropout(h)
        return h
