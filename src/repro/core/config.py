"""Hyper-parameter configuration for AnECI.

The paper's supplementary S.I is not available; values below follow the
main text where stated (LeakyReLU slope 0.01, 150 epochs for node
classification, 600 for community detection, early-stopping patience 20/40
for anomaly detection) and conventional defaults elsewhere.  Everything is
a plain dataclass so experiments can record the exact configuration used.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["AnECIConfig", "TASK_EPOCHS"]

#: Per-task epoch budgets from Section V-D.
TASK_EPOCHS = {
    "classification": 150,
    "community": 600,
    "anomaly": 300,  # early stopping bounds the actual count
}


@dataclass
class AnECIConfig:
    """All knobs of the AnECI model.

    Attributes
    ----------
    num_communities:
        ``|C|`` — also the embedding width ``h`` (Section IV-B).
    hidden_dims:
        Widths of the intermediate GCN layers.
    order:
        High-order proximity order ``l`` (Eq. 1).
    proximity_weights:
        Optional per-order weights ``w``; uniform when ``None``.
    beta1 / beta2:
        Loss weights of Eq. 18 (−β₁·Q̃ + β₂·L_R).
    lr / weight_decay / epochs / patience:
        Optimisation schedule; ``patience=None`` disables early stopping.
    recon_sample_size:
        If the graph has more nodes than this, each epoch reconstructs a
        random node-subset block of ``Ã`` instead of the full ``N × N``
        matrix (keeps Pubmed-scale graphs tractable).
    dropout:
        Dropout applied between GCN layers during training.
    seed:
        Seed for weight init and any sampling.
    n_init:
        Independent restarts; the run with the best (highest) final
        modularity is kept.  Guards against rare collapse to a single
        community when ``|C|`` is small.
    decoder_source:
        What the decoder inner-products: ``"membership"`` (the paper's
        choice, Eq. 15 uses ``P``) or ``"embedding"`` (``Z``, the GAE
        convention) — exposed for the ablation benchmark.
    recon_target:
        What the decoder reconstructs: ``"high_order"`` (the paper's ``Ã``)
        or ``"first_order"`` (``A + I`` row-normalised, the GAE
        convention) — exposed for the ablation benchmark.
    proximity_kind / katz_beta:
        ``"uniform"`` uses the paper's equal per-order weights (or
        ``proximity_weights`` when given); ``"katz"`` uses the geometric
        Katz weighting ``w_l = βˡ`` (Definition 3's cited family).
    dtype:
        Numeric precision of the training path: ``"float64"`` (the
        default — bit-identical to the historical engine) or
        ``"float32"`` (half the memory bandwidth, faster on large
        graphs, metric parity within small tolerances).  The default is
        taken from the ``REPRO_DTYPE`` environment variable when set.
    backend:
        Kernel backend the fit's hot loops dispatch to: ``"numpy"`` (the
        reference) or ``"compiled"`` (numba-parallel kernels where
        importable, probed bit-identical, per-op numpy fallback
        otherwise).  Any value produces bit-identical embeddings; the
        choice affects speed only, so it is *not* part of the fit
        fingerprint or checkpoint run key.  Default from the
        ``REPRO_BACKEND`` environment variable when set.
    divergence_policy:
        What to do when an epoch produces a non-finite loss or gradient:
        ``"recover"`` (restore the last good state, back off the
        learning rate, re-seed after repeated failures — the default),
        ``"raise"`` (fail fast with ``DivergenceError``), or ``"off"``
        (legacy behaviour).  Default from ``REPRO_DIVERGENCE_POLICY``.
    max_recoveries / lr_backoff / reseed_after:
        Recovery budget per restart, the learning-rate multiplier
        applied on each recovery, and how many consecutive recoveries
        escalate to a model re-seed (see
        :class:`repro.resilience.guards.RecoveryPolicy`).
    checkpoint_dir:
        When set, the fit writes crash-safe snapshots under this
        directory (namespaced by a run key derived from graph + config)
        and ``fit(resume_from=...)`` can continue an interrupted run.
        Default from ``REPRO_CHECKPOINT_DIR``; ``None`` disables
        checkpointing.
    checkpoint_every:
        Epoch interval between snapshots (``None``: the
        ``REPRO_CHECKPOINT_EVERY`` environment variable, else 25).
    train_mode:
        ``"full"`` (the default — the historical full-batch epoch,
        bit-identical to every release so far) or ``"sampled"``
        (edge/negative-sampled reconstruction, subsampled modularity and
        a fanout-bounded minibatch GCN forward; sublinear per-epoch cost
        and memory, the mode that makes 100k–1M-node graphs trainable).
        Default from the ``REPRO_TRAIN_MODE`` environment variable (the
        global CLI ``--train-mode`` flag sets it).
    batch_nodes:
        Sampled mode only: nodes per epoch batch — the seed set of the
        minibatch GCN forward and the subsample of the modularity
        estimator.  Default from ``REPRO_BATCH_NODES``.
    edge_samples:
        Sampled mode only: positive target entries drawn per epoch for
        the stratified reconstruction estimator.  Default from
        ``REPRO_EDGE_SAMPLES``.
    negative_samples:
        Sampled mode only: negative pairs drawn per positive (the ``k``
        of k-negative sampling).  Default from ``REPRO_NEG_SAMPLES``.
    fanout:
        Sampled mode only: per-layer neighbor cap of the minibatch GCN
        forward; rows above the cap are subsampled without replacement
        and rescaled so the sampled aggregation is an unbiased estimate
        of the full convolution.  Default from ``REPRO_FANOUT``.
    """

    num_communities: int
    hidden_dims: tuple[int, ...] = (64,)
    order: int = 2
    proximity_weights: tuple[float, ...] | None = None
    beta1: float = 1.0
    beta2: float = 1.0
    lr: float = 0.01
    weight_decay: float = 0.0
    epochs: int = 150
    patience: int | None = None
    recon_sample_size: int = 2048
    dropout: float = 0.0
    seed: int = 0
    n_init: int = 1
    decoder_source: str = "membership"
    recon_target: str = "high_order"
    proximity_kind: str = "uniform"
    katz_beta: float = 0.2
    dtype: str = field(
        default_factory=lambda: os.environ.get("REPRO_DTYPE", "float64"))
    backend: str = field(
        default_factory=lambda: os.environ.get("REPRO_BACKEND") or "numpy")
    divergence_policy: str = field(
        default_factory=lambda: os.environ.get("REPRO_DIVERGENCE_POLICY",
                                               "recover"))
    max_recoveries: int = 3
    lr_backoff: float = 0.5
    reseed_after: int = 2
    checkpoint_dir: str | None = field(
        default_factory=lambda: os.environ.get("REPRO_CHECKPOINT_DIR") or None)
    checkpoint_every: int | None = None
    train_mode: str = field(
        default_factory=lambda: os.environ.get("REPRO_TRAIN_MODE", "full"))
    batch_nodes: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_BATCH_NODES",
                                                   "4096")))
    edge_samples: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_EDGE_SAMPLES",
                                                   "8192")))
    negative_samples: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_NEG_SAMPLES", "5")))
    fanout: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_FANOUT", "10")))
    extras: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.n_init < 1:
            raise ValueError("n_init must be >= 1")
        if self.decoder_source not in ("membership", "embedding"):
            raise ValueError("decoder_source must be 'membership' or "
                             "'embedding'")
        if self.recon_target not in ("high_order", "first_order"):
            raise ValueError("recon_target must be 'high_order' or "
                             "'first_order'")
        if self.proximity_kind not in ("uniform", "katz"):
            raise ValueError("proximity_kind must be 'uniform' or 'katz'")
        if not 0.0 < self.katz_beta < 1.0:
            raise ValueError("katz_beta must be in (0, 1)")
        if self.num_communities < 1:
            raise ValueError("num_communities must be >= 1")
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.beta1 < 0 or self.beta2 < 0:
            raise ValueError("loss weights must be non-negative")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")
        from ..nn import backend as _kernel_backend
        if self.backend not in _kernel_backend.known_backends():
            raise ValueError(
                f"backend must be one of "
                f"{', '.join(_kernel_backend.known_backends())}; "
                f"got {self.backend!r}")
        if self.divergence_policy not in ("recover", "raise", "off"):
            raise ValueError("divergence_policy must be 'recover', 'raise' "
                             "or 'off'")
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise ValueError("lr_backoff must be in (0, 1]")
        if self.reseed_after < 1:
            raise ValueError("reseed_after must be >= 1")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.train_mode not in ("full", "sampled"):
            raise ValueError("train_mode must be 'full' or 'sampled'")
        if self.batch_nodes < 2:
            # The modularity estimator needs at least one node pair.
            raise ValueError("batch_nodes must be >= 2")
        if self.edge_samples < 1:
            raise ValueError("edge_samples must be >= 1")
        if self.negative_samples < 1:
            raise ValueError("negative_samples must be >= 1")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
