"""AnECI — Attributed Network Embedding preserving Community Information.

The model of Section IV: a GCN encoder whose unsupervised training signal
combines (a) the generalised high-order/overlapped-community modularity
``Q̃`` and (b) reconstruction of the high-order proximity from the softmax
community membership, ``L = −β₁·Q̃ + β₂·L_R`` (Eq. 18).

``AnECIPlus`` (Algorithm 1) adds a two-stage denoising pass and lives in
:mod:`repro.core.denoise`; it is re-exported here for convenience.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph.graph import Graph, normalized_adjacency
from ..nn import Adam, Tensor, functional as F, no_grad
from ..obs import events, metrics, trace
from .config import AnECIConfig
from .encoder import GCNEncoder
from .modularity import generalized_modularity_tensor
from .scores import (community_anomaly_scores, membership_entropy_scores,
                     rigidity)
from .workspace import FitWorkspace, get_workspace

__all__ = ["AnECI", "AnECIPlus"]


class AnECI:
    """The AnECI embedding model.

    Parameters mirror :class:`~repro.core.config.AnECIConfig`; pass either a
    ready-made ``config`` or individual keyword arguments.

    Examples
    --------
    >>> from repro import AnECI, load_dataset
    >>> graph = load_dataset("cora", scale=0.1)
    >>> model = AnECI(graph.num_features, num_communities=7, epochs=30)
    >>> embedding = model.fit_transform(graph)
    >>> embedding.shape == (graph.num_nodes, 7)
    True
    """

    def __init__(self, num_features: int, num_communities: int | None = None,
                 config: AnECIConfig | None = None, **kwargs):
        if config is None:
            if num_communities is None:
                raise ValueError("num_communities is required without a config")
            config = AnECIConfig(num_communities=num_communities, **kwargs)
        elif kwargs or num_communities is not None:
            raise ValueError("pass either a config or keyword arguments, not both")
        self.config = config
        self.num_features = int(num_features)
        self.encoder: GCNEncoder | None = None
        self.history: list[dict[str, float]] = []
        self._fitted_graph: Graph | None = None
        #: Workspace of the last in-process fit; lets inference reuse the
        #: cached normalised adjacency instead of rebuilding it per call.
        self._fit_workspace: FitWorkspace | None = None
        #: One-slot (graph, adj_norm) memo for inference on other graphs.
        self._adj_norm_memo: tuple[Graph, object] | None = None
        #: Modularity of the state the encoder actually holds after a fit
        #: (the restored-best record under early stopping, the final
        #: record otherwise) — what restart selection ranks by.
        self.selection_modularity: float = -np.inf

    # ------------------------------------------------------------------ #
    # Training                                                            #
    # ------------------------------------------------------------------ #
    def fit(self, graph: Graph, callback=None,
            workers: int | None = None) -> "AnECI":
        """Train on ``graph``; each call restarts from fresh weights.

        ``callback(epoch, model, record)`` runs after every epoch, where
        ``record`` carries the epoch's loss decomposition, rigidity and
        the ``restart`` index — used by the validation-selection and
        Fig. 9(b) experiments.

        With ``n_init > 1`` the whole run is repeated from different
        initialisations and the restart with the highest final modularity
        is kept; the callback observes every restart (distinguishable by
        the record's ``restart`` key).

        ``workers`` (default: the ``REPRO_WORKERS`` environment variable,
        else serial) runs the restarts in a process pool via
        :mod:`repro.parallel` — results, selected weights and the emitted
        telemetry stream are bit-identical to the serial loop.  A
        non-``None`` ``callback`` forces the serial path: per-epoch
        callbacks observe live model state, which cannot cross a process
        boundary.
        """
        if self.config.n_init > 1:
            return self._fit_with_restarts(graph, callback, workers)
        self._fit_once(graph, callback, self.config.seed)
        # Single-init fits emit the same per-restart record as n_init > 1
        # runs, so telemetry consumers see one uniform stream shape.
        events.emit("restart", restart=0,
                    final_modularity=self.selection_modularity,
                    epochs_run=len(self.history), best_so_far=True)
        return self

    def _fit_with_restarts(self, graph: Graph, callback,
                           workers: int | None = None) -> "AnECI":
        from ..parallel import resolve_workers
        if callback is None and resolve_workers(workers) > 1:
            return self._fit_restarts_pooled(graph, workers)
        best_state = None
        best_history = None
        best_q = -np.inf
        best_restart = -1
        for restart in range(self.config.n_init):
            self._fit_once(graph, callback, self.config.seed + restart,
                           restart=restart)
            # Rank by the modularity of the weights the restart actually
            # kept: under early stopping that is the restored-best state,
            # not the last epoch before patience ran out.
            final_q = self.selection_modularity
            if final_q > best_q:
                best_q = final_q
                best_state = self.encoder.state_dict()
                best_history = self.history
                best_restart = restart
            events.emit("restart", restart=restart, final_modularity=final_q,
                        epochs_run=len(self.history),
                        best_so_far=restart == best_restart)
        metrics.registry().counter("aneci.restarts").inc(self.config.n_init)
        self.encoder.load_state_dict(best_state)
        self.history = best_history
        self.selection_modularity = best_q
        return self

    def _fit_restarts_pooled(self, graph: Graph,
                             workers: int | None) -> "AnECI":
        """Run the restarts in worker processes, keep the best in-parent.

        Each restart is a pure task (graph, config, derived seed) whose
        result — weights, selection modularity, history — is merged in
        restart order, so selection (including the lowest-index tie
        break) and the replayed epoch/restart event stream match the
        serial loop exactly.  Workers rebuild the fit workspace cache per
        process; the content-addressed fingerprints make that a single
        cheap rebuild per worker.
        """
        from ..parallel import ParallelExecutor
        cfg = self.config
        best = {"q": -np.inf, "restart": -1, "state": None, "history": None}

        def select(restart: int, value) -> None:
            state, final_q, history = value
            if final_q > best["q"]:
                best.update(q=final_q, restart=restart, state=state,
                            history=history)
            events.emit("restart", restart=restart, final_modularity=final_q,
                        epochs_run=len(history),
                        best_so_far=restart == best["restart"])

        ParallelExecutor(workers).map(
            _restart_task,
            [(graph, cfg, cfg.seed + restart, restart)
             for restart in range(cfg.n_init)],
            on_result=select)
        metrics.registry().counter("aneci.restarts").inc(cfg.n_init)
        rng = np.random.default_rng(cfg.seed + best["restart"])
        self.encoder = GCNEncoder(
            self.num_features, (*cfg.hidden_dims, cfg.num_communities),
            rng=rng, dropout=cfg.dropout, dtype=cfg.dtype)
        self.encoder.load_state_dict(best["state"])
        self._fitted_graph = graph
        self._fit_workspace = None
        self.history = best["history"]
        self.selection_modularity = best["q"]
        return self

    def _fit_once(self, graph: Graph, callback, seed: int,
                  restart: int = 0) -> "AnECI":
        with trace.span("fit"):
            return self._fit_once_traced(graph, callback, seed, restart)

    def _fit_once_traced(self, graph: Graph, callback, seed: int,
                         restart: int) -> "AnECI":
        cfg = self.config
        if graph.num_features != self.num_features:
            raise ValueError(
                f"model built for {self.num_features} features, graph has "
                f"{graph.num_features}")
        rng = np.random.default_rng(seed)
        dtype = np.dtype(cfg.dtype)
        self.encoder = GCNEncoder(
            self.num_features, (*cfg.hidden_dims, cfg.num_communities),
            rng=rng, dropout=cfg.dropout, dtype=dtype)
        self.history = []
        self._fitted_graph = graph

        with trace.span("setup"):
            # Every epoch-invariant constant (normalised adjacency,
            # proximity, modularity terms, densified recon target) comes
            # from the content-addressed workspace cache, so restarts and
            # unchanged-graph refits skip the whole rebuild.  All of it —
            # and the feature tensor — is held in the configured dtype so
            # the entire epoch runs at one precision.
            workspace = get_workspace(graph, cfg)
            self._fit_workspace = workspace
            features = Tensor(np.asarray(graph.features, dtype=dtype))
            optimizer = Adam(self.encoder.parameters(), lr=cfg.lr,
                             weight_decay=cfg.weight_decay)

        epoch_counter = metrics.registry().counter("aneci.epochs")

        best_loss = np.inf
        best_state = None
        best_q = -np.inf
        stall = 0
        for epoch in range(cfg.epochs):
            with trace.span("epoch"):
                self.encoder.train()
                optimizer.zero_grad()
                z = self.encoder(features, workspace.adj_norm)
                p = z.softmax(axis=-1)

                q_tilde = generalized_modularity_tensor(
                    p, workspace.prox, workspace.degrees, workspace.two_m)
                decoder_input = p if cfg.decoder_source == "membership" else z
                recon = self._reconstruction_loss(decoder_input, workspace,
                                                  rng)
                loss = q_tilde * (-cfg.beta1) + recon * cfg.beta2
                loss.backward()
                optimizer.step()

            record = {
                "epoch": epoch,
                "restart": restart,
                "loss": loss.item(),
                "modularity": q_tilde.item(),
                "reconstruction": recon.item(),
                "rigidity": rigidity(p.data),
            }
            self.history.append(record)
            epoch_counter.inc()
            events.emit("epoch", model="aneci", **record)
            if callback is not None:
                callback(epoch, self, record)

            if cfg.patience is not None:
                # Early stopping on the modularity training loss (Section V-D).
                modularity_loss = -record["modularity"]
                if modularity_loss < best_loss - 1e-6:
                    best_loss = modularity_loss
                    best_state = self.encoder.state_dict()
                    best_q = record["modularity"]
                    stall = 0
                else:
                    stall += 1
                    if stall >= cfg.patience:
                        break
        if cfg.patience is not None and best_state is not None:
            self.encoder.load_state_dict(best_state)
            self.selection_modularity = best_q
        else:
            self.selection_modularity = self.history[-1]["modularity"]
        return self

    def _reconstruction_loss(self, p: Tensor, workspace: FitWorkspace,
                             rng: np.random.Generator) -> Tensor:
        """High-order reconstruction ``L_R`` (Eq. 17) on ``Â = σ(PPᵀ)``.

        The paper sums Eq. 17 over all pairs; we reduce by the pair count so
        the two loss terms of Eq. 18 share a common O(1) scale and β₁/β₂
        keep their balancing role across graph sizes.  For large graphs a
        random node block is reconstructed per epoch (same mean scale).
        """
        if workspace.sample_nodes is None:
            logits = p @ p.T
            return F.binary_cross_entropy_with_logits(
                logits, workspace.dense_target(), "mean")
        idx = rng.choice(p.shape[0], size=workspace.sample_nodes,
                         replace=False)
        block = p[idx]
        logits = block @ block.T
        return F.binary_cross_entropy_with_logits(
            logits, workspace.target_block(idx), "mean")

    # ------------------------------------------------------------------ #
    # Inference                                                           #
    # ------------------------------------------------------------------ #
    def embed(self, graph: Graph | None = None) -> np.ndarray:
        """Return the embedding matrix ``Z`` for ``graph`` (default: the
        graph the model was fitted on)."""
        if self.encoder is None:
            raise RuntimeError("call fit() before embed()")
        graph = graph or self._fitted_graph
        adj_norm = self._inference_adj_norm(graph)
        dtype = np.dtype(self.config.dtype)
        self.encoder.eval()
        with no_grad():
            z = self.encoder(
                Tensor(np.asarray(graph.features, dtype=dtype)), adj_norm)
        return z.data.copy()

    def _inference_adj_norm(self, graph: Graph) -> sp.csr_matrix:
        """The normalised adjacency for inference on ``graph``.

        For the graph the model was fitted on this is the fit
        workspace's cached matrix — no rebuild; any other graph's
        normalisation is memoised per graph object so repeated
        ``embed``/``membership``/``assign_communities`` calls pay for it
        once.
        """
        workspace = self._fit_workspace
        if workspace is not None and graph is self._fitted_graph:
            return workspace.adj_norm
        memo = self._adj_norm_memo
        if memo is not None and memo[0] is graph:
            return memo[1]
        adj_norm = normalized_adjacency(graph.adjacency)
        self._adj_norm_memo = (graph, adj_norm)
        return adj_norm

    def fit_transform(self, graph: Graph, callback=None,
                      workers: int | None = None) -> np.ndarray:
        return self.fit(graph, callback=callback, workers=workers).embed(graph)

    def membership(self, graph: Graph | None = None) -> np.ndarray:
        """Soft community membership ``P = softmax(Z)`` (Eq. 3)."""
        return F.stable_softmax(self.embed(graph), axis=1)

    def assign_communities(self, graph: Graph | None = None) -> np.ndarray:
        """Hard community labels ``argmax_k pᵢᵏ`` (Section VI-D)."""
        return self.membership(graph).argmax(axis=1)

    def anomaly_scores(self, graph: Graph | None = None,
                       use_attributes: bool = True) -> np.ndarray:
        """Node anomaly scores (Section VI-C).

        Membership entropy catches structural outliers; the
        community-attribute inconsistency term catches attribute and
        combined outliers.  Set ``use_attributes=False`` for the pure
        entropy score (e.g. on identity-feature graphs).
        """
        graph = graph or self._fitted_graph
        membership = self.membership(graph)
        if not use_attributes:
            return membership_entropy_scores(membership)
        return community_anomaly_scores(membership, graph.features)


def _restart_task(graph: Graph, config: AnECIConfig, seed: int,
                  restart: int) -> tuple[dict, float, list[dict]]:
    """One restart as a pure, picklable task for :mod:`repro.parallel`.

    Returns the trained weights, the selection modularity and the epoch
    history — everything the parent needs to pick a winner without the
    model object crossing the process boundary.
    """
    model = AnECI(graph.num_features, config=config)
    model._fit_once(graph, None, seed, restart=restart)
    return model.encoder.state_dict(), model.selection_modularity, model.history


# Re-export so ``from repro.core.aneci import AnECIPlus`` works; the class
# definition lives in denoise.py to keep Algorithm 1 in one place.
from .denoise import AnECIPlus  # noqa: E402  (circular-free: denoise imports nothing from here at import time)
