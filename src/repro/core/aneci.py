"""AnECI — Attributed Network Embedding preserving Community Information.

The model of Section IV: a GCN encoder whose unsupervised training signal
combines (a) the generalised high-order/overlapped-community modularity
``Q̃`` and (b) reconstruction of the high-order proximity from the softmax
community membership, ``L = −β₁·Q̃ + β₂·L_R`` (Eq. 18).

``AnECIPlus`` (Algorithm 1) adds a two-stage denoising pass and lives in
:mod:`repro.core.denoise`; it is re-exported here for convenience.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp

from ..graph.graph import Graph, normalized_adjacency
from ..nn import Adam, Tensor, functional as F, no_grad
from ..nn.backend import use_backend
from ..nn.backend import active as _active_backend
from ..obs import events, metrics, store, trace
from ..resilience import faultinject
from ..resilience.checkpoint import (CheckpointManager, config_fingerprint,
                                     run_key)
from ..resilience.guards import DivergenceGuard, RecoveryPolicy
from .config import AnECIConfig
from .encoder import GCNEncoder
from .modularity import (generalized_modularity_tensor,
                         sampled_modularity_tensor)
from .scores import (community_anomaly_scores, membership_entropy_scores,
                     rigidity)
from .workspace import FitWorkspace, get_workspace

__all__ = ["AnECI", "AnECIPlus"]


class AnECI:
    """The AnECI embedding model.

    Parameters mirror :class:`~repro.core.config.AnECIConfig`; pass either a
    ready-made ``config`` or individual keyword arguments.

    Examples
    --------
    >>> from repro import AnECI, load_dataset
    >>> graph = load_dataset("cora", scale=0.1)
    >>> model = AnECI(graph.num_features, num_communities=7, epochs=30)
    >>> embedding = model.fit_transform(graph)
    >>> embedding.shape == (graph.num_nodes, 7)
    True
    """

    def __init__(self, num_features: int, num_communities: int | None = None,
                 config: AnECIConfig | None = None, **kwargs):
        if config is None:
            if num_communities is None:
                raise ValueError("num_communities is required without a config")
            config = AnECIConfig(num_communities=num_communities, **kwargs)
        elif kwargs or num_communities is not None:
            raise ValueError("pass either a config or keyword arguments, not both")
        self.config = config
        self.num_features = int(num_features)
        self.encoder: GCNEncoder | None = None
        self.history: list[dict[str, float]] = []
        self._fitted_graph: Graph | None = None
        #: Workspace of the last in-process fit; lets inference reuse the
        #: cached normalised adjacency instead of rebuilding it per call.
        self._fit_workspace: FitWorkspace | None = None
        #: One-slot (graph, adj_norm) memo for inference on other graphs.
        self._adj_norm_memo: tuple[Graph, object] | None = None
        #: Modularity of the state the encoder actually holds after a fit
        #: (the restored-best record under early stopping, the final
        #: record otherwise) — what restart selection ranks by.
        self.selection_modularity: float = -np.inf

    # ------------------------------------------------------------------ #
    # Training                                                            #
    # ------------------------------------------------------------------ #
    def fit(self, graph: Graph, callback=None, workers: int | None = None,
            resume_from: str | None = None) -> "AnECI":
        """Train on ``graph``; each call restarts from fresh weights.

        ``callback(epoch, model, record)`` runs after every epoch, where
        ``record`` carries the epoch's loss decomposition, rigidity and
        the ``restart`` index — used by the validation-selection and
        Fig. 9(b) experiments.

        With ``n_init > 1`` the whole run is repeated from different
        initialisations and the restart with the highest final modularity
        is kept; the callback observes every restart (distinguishable by
        the record's ``restart`` key).

        ``workers`` (default: the ``REPRO_WORKERS`` environment variable,
        else serial) runs the restarts in a process pool via
        :mod:`repro.parallel` — results, selected weights and the emitted
        telemetry stream are bit-identical to the serial loop.  A
        non-``None`` ``callback`` forces the serial path: per-epoch
        callbacks observe live model state, which cannot cross a process
        boundary.

        ``resume_from`` names a checkpoint directory (typically the
        ``checkpoint_dir`` of an interrupted run): the newest valid
        snapshot for this exact (graph, config) pair is restored and
        training continues from it, reproducing the uninterrupted run
        bit for bit.  A completed run's final snapshot restores without
        training; a directory with no usable snapshot warns and starts
        fresh.  Resume runs restarts serially (their mid-run state lives
        in the parent).

        With ``REPRO_RUN_DIR`` set (CLI: ``--run-dir``) the fit leaves
        one durable entry in the run ledger — keyed ``fit:<run key>`` —
        carrying the epoch history, final metrics, span/metric deltas
        and regression findings against the previous run under the same
        key (see :mod:`repro.obs.store`).
        """
        if not store.enabled():
            return self._fit_impl(graph, callback, workers, resume_from)
        from ..parallel import resolve_workers
        cfg = self.config
        with store.capture_run(
                "fit", f"fit:{run_key(graph, cfg)}",
                model="aneci",
                graph={"name": graph.name, "nodes": graph.num_nodes,
                       "edges": graph.num_edges,
                       "features": graph.num_features},
                config=config_fingerprint(cfg),
                config_summary={
                    "num_communities": cfg.num_communities, "lr": cfg.lr,
                    "epochs": cfg.epochs, "n_init": cfg.n_init,
                    "seed": cfg.seed, "patience": cfg.patience},
                dtype=str(cfg.dtype),
                workers=resolve_workers(workers),
                resumed=resume_from is not None) as run:
            self._fit_impl(graph, callback, workers, resume_from)
            run["epochs"] = len(self.history)
            run["history"] = [
                {"epoch": r["epoch"], "restart": r["restart"],
                 "loss": r["loss"], "modularity": r["modularity"]}
                for r in self.history]
            last = self.history[-1] if self.history else {}
            run["final"] = {
                "selection_modularity": _finite_or_none(
                    self.selection_modularity),
                "loss": _finite_or_none(last.get("loss", np.nan)),
                "modularity": _finite_or_none(
                    last.get("modularity", np.nan)),
            }
        return self

    def _fit_impl(self, graph: Graph, callback, workers: int | None,
                  resume_from: str | None) -> "AnECI":
        manager, resume = self._checkpoint_setup(graph, resume_from)
        if resume is not None and resume[1].get("kind") == "final":
            return self._restore_final(graph, *resume)
        if self.config.n_init > 1:
            self._fit_with_restarts(graph, callback, workers,
                                    manager=manager, resume=resume)
        else:
            self._fit_once(graph, callback, self.config.seed,
                           manager=manager, resume=resume)
            # Single-init fits emit the same per-restart record as
            # n_init > 1 runs, so telemetry consumers see one uniform
            # stream shape.
            events.emit("restart", restart=0,
                        final_modularity=self.selection_modularity,
                        epochs_run=len(self.history), best_so_far=True)
        if manager is not None:
            self._save_final(manager)
        return self

    def _fit_with_restarts(self, graph: Graph, callback,
                           workers: int | None = None, manager=None,
                           resume=None) -> "AnECI":
        from ..parallel import resolve_workers
        if resume is None and callback is None and resolve_workers(workers) > 1:
            return self._fit_restarts_pooled(graph, workers)
        start_restart = 0
        resume_restart = -1
        # best-so-far across completed restarts; shared with _fit_once so
        # epoch checkpoints carry it and a resumed fit can skip restarts
        # that already ran.
        fit_ctx = {"q": -np.inf, "restart": -1, "state": None, "history": None}
        if resume is not None:
            arrays, meta = resume
            resume_restart = int(meta["restart"])
            fit_meta = meta.get("fit")
            if fit_meta is not None:
                # Serial-written checkpoints embed the winner of every
                # restart completed before the snapshot: skip re-running
                # them.  Pool-written checkpoints carry no cross-restart
                # context (fit is None) — earlier restarts re-run fresh,
                # deterministically reproducing their original results.
                start_restart = resume_restart
                if fit_meta.get("has_state"):
                    fit_ctx.update(
                        q=(-np.inf if fit_meta["best_q"] is None
                           else float(fit_meta["best_q"])),
                        restart=int(fit_meta["best_restart"]),
                        state=_unpack(arrays, "fitbest"),
                        history=[dict(r) for r in fit_meta["best_history"]])
        for restart in range(start_restart, self.config.n_init):
            self._fit_once(graph, callback, self.config.seed + restart,
                           restart=restart, manager=manager,
                           resume=resume if restart == resume_restart
                           else None, fit_ctx=fit_ctx)
            # Rank by the modularity of the weights the restart actually
            # kept: under early stopping that is the restored-best state,
            # not the last epoch before patience ran out.
            final_q = self.selection_modularity
            if final_q > fit_ctx["q"]:
                fit_ctx.update(q=final_q, restart=restart,
                               state=self.encoder.state_dict(),
                               history=self.history)
            events.emit("restart", restart=restart, final_modularity=final_q,
                        epochs_run=len(self.history),
                        best_so_far=restart == fit_ctx["restart"])
        metrics.registry().counter("aneci.restarts").inc(
            self.config.n_init - start_restart)
        self.encoder.load_state_dict(fit_ctx["state"])
        self.history = fit_ctx["history"]
        self.selection_modularity = fit_ctx["q"]
        return self

    def _fit_restarts_pooled(self, graph: Graph,
                             workers: int | None) -> "AnECI":
        """Run the restarts in worker processes, keep the best in-parent.

        Each restart is a pure task (graph, config, derived seed) whose
        result — weights, selection modularity, history — is merged in
        restart order, so selection (including the lowest-index tie
        break) and the replayed epoch/restart event stream match the
        serial loop exactly.  Workers rebuild the fit workspace cache per
        process; the content-addressed fingerprints make that a single
        cheap rebuild per worker.
        """
        from ..parallel import ParallelExecutor
        cfg = self.config
        best = {"q": -np.inf, "restart": -1, "state": None, "history": None}

        def select(restart: int, value) -> None:
            state, final_q, history = value
            if final_q > best["q"]:
                best.update(q=final_q, restart=restart, state=state,
                            history=history)
            events.emit("restart", restart=restart, final_modularity=final_q,
                        epochs_run=len(history),
                        best_so_far=restart == best["restart"])

        ParallelExecutor(workers).map(
            _restart_task,
            [(graph, cfg, cfg.seed + restart, restart)
             for restart in range(cfg.n_init)],
            on_result=select)
        metrics.registry().counter("aneci.restarts").inc(cfg.n_init)
        rng = np.random.default_rng(cfg.seed + best["restart"])
        self.encoder = GCNEncoder(
            self.num_features, (*cfg.hidden_dims, cfg.num_communities),
            rng=rng, dropout=cfg.dropout, dtype=cfg.dtype)
        self.encoder.load_state_dict(best["state"])
        self._fitted_graph = graph
        self._fit_workspace = None
        self.history = best["history"]
        self.selection_modularity = best["q"]
        return self

    def _fit_once(self, graph: Graph, callback, seed: int,
                  restart: int = 0, manager=None, resume=None,
                  fit_ctx=None) -> "AnECI":
        # The kernel backend is resolved exactly once per fit; every
        # dispatched op below (spmm, fused layers/loss, softmax,
        # optimiser steps, node sampling) routes through it.
        with trace.span("fit"), use_backend(self.config.backend):
            return self._fit_once_traced(graph, callback, seed, restart,
                                         manager, resume, fit_ctx)

    def _fit_once_traced(self, graph: Graph, callback, seed: int,
                         restart: int, manager=None, resume=None,
                         fit_ctx=None) -> "AnECI":
        cfg = self.config
        if graph.num_features != self.num_features:
            raise ValueError(
                f"model built for {self.num_features} features, graph has "
                f"{graph.num_features}")
        rng = np.random.default_rng(seed)
        dtype = np.dtype(cfg.dtype)
        self.encoder = GCNEncoder(
            self.num_features, (*cfg.hidden_dims, cfg.num_communities),
            rng=rng, dropout=cfg.dropout, dtype=dtype)
        self.history = []
        self._fitted_graph = graph

        with trace.span("setup"):
            # Every epoch-invariant constant (normalised adjacency,
            # proximity, modularity terms, densified recon target) comes
            # from the content-addressed workspace cache, so restarts and
            # unchanged-graph refits skip the whole rebuild.  All of it —
            # and the feature tensor — is held in the configured dtype so
            # the entire epoch runs at one precision.
            workspace = get_workspace(graph, cfg)
            self._fit_workspace = workspace
            features = Tensor(np.asarray(graph.features, dtype=dtype))
            optimizer = Adam(self.encoder.parameters(), lr=cfg.lr,
                             weight_decay=cfg.weight_decay)
            if manager is None and cfg.checkpoint_dir is not None:
                # Pooled restarts land here: each worker derives its own
                # manager from the config — the run key is shared, the
                # epoch files are namespaced per restart.
                manager = CheckpointManager.for_fit(cfg.checkpoint_dir,
                                                    graph, cfg)
            policy = RecoveryPolicy.from_config(cfg)
            # The guard's checks are read-only and its snapshots live
            # outside the autograd graph, so a non-diverging run is
            # bit-identical with or without it.
            guard = (DivergenceGuard(self.encoder.parameters(), optimizer,
                                     policy)
                     if policy.mode != "off" else None)

        epoch_counter = metrics.registry().counter("aneci.epochs")

        best_loss = np.inf
        best_state = None
        best_q = -np.inf
        stall = 0
        reseeds = 0
        start_epoch = 0
        if resume is not None:
            (best_loss, best_state, best_q, stall, reseeds) = \
                self._load_epoch_checkpoint(resume, rng, optimizer, guard)
            start_epoch = int(resume[1]["epoch"]) + 1
        epoch = start_epoch
        stopped = False
        while epoch < cfg.epochs and not stopped:
            with trace.span("epoch"):
                self.encoder.train()
                optimizer.zero_grad()
                if cfg.train_mode == "sampled":
                    q_tilde, recon, p = self._sampled_epoch(
                        features, workspace, rng)
                else:
                    z = self.encoder(features, workspace.adj_norm)
                    p = z.softmax(axis=-1)

                    q_tilde = generalized_modularity_tensor(
                        p, workspace.prox, workspace.degrees,
                        workspace.two_m)
                    decoder_input = (p if cfg.decoder_source == "membership"
                                     else z)
                    recon = self._reconstruction_loss(decoder_input,
                                                      workspace, rng)
                loss = q_tilde * (-cfg.beta1) + recon * cfg.beta2
                if faultinject.fire("nan_loss", epoch=epoch,
                                    restart=restart) is not None:
                    loss.data[...] = np.nan
                loss.backward()
                loss_value = loss.item()
                if guard is not None and DivergenceGuard.diverged(
                        loss_value, self.encoder.parameters()):
                    action = guard.handle(loss=loss_value, epoch=epoch,
                                          restart=restart)
                    if action == "reseed":
                        # Repeated divergence from the same basin: rebuild
                        # the model from a derived seed at the backed-off
                        # learning rate.  The RNG keeps rolling (restoring
                        # it would replay the same divergence forever).
                        reseeds += 1
                        lr = optimizer.lr
                        rng = np.random.default_rng(seed + 7919 * reseeds)
                        self.encoder = GCNEncoder(
                            self.num_features,
                            (*cfg.hidden_dims, cfg.num_communities),
                            rng=rng, dropout=cfg.dropout, dtype=dtype)
                        optimizer = Adam(self.encoder.parameters(), lr=lr,
                                         weight_decay=cfg.weight_decay)
                        guard.rebind(self.encoder.parameters(), optimizer)
                    if action != "ignore":
                        # A diverged epoch consumes its index (budgets and
                        # checkpoints stay monotonic) but records nothing.
                        epoch += 1
                        continue
                optimizer.step()

            record = {
                "epoch": epoch,
                "restart": restart,
                "loss": loss_value,
                "modularity": q_tilde.item(),
                "reconstruction": recon.item(),
                "rigidity": rigidity(p.data),
            }
            self.history.append(record)
            epoch_counter.inc()
            events.emit("epoch", model="aneci", **record)
            if callback is not None:
                callback(epoch, self, record)

            if cfg.patience is not None:
                # Early stopping on the modularity training loss (Section V-D).
                modularity_loss = -record["modularity"]
                if modularity_loss < best_loss - 1e-6:
                    best_loss = modularity_loss
                    best_state = self.encoder.state_dict()
                    best_q = record["modularity"]
                    stall = 0
                else:
                    stall += 1
                    if stall >= cfg.patience:
                        stopped = True
            if guard is not None:
                guard.commit()
            if manager is not None and manager.due(epoch):
                self._save_epoch_checkpoint(
                    manager, restart=restart, epoch=epoch, rng=rng,
                    optimizer=optimizer, guard=guard,
                    early=(best_loss, best_state, best_q, stall),
                    reseeds=reseeds, fit_ctx=fit_ctx)
            epoch += 1
        if cfg.patience is not None and best_state is not None:
            self.encoder.load_state_dict(best_state)
            self.selection_modularity = best_q
        elif self.history:
            self.selection_modularity = self.history[-1]["modularity"]
        else:
            # Every epoch diverged and was skipped; nothing to select on.
            self.selection_modularity = -np.inf
        return self

    def _sampled_epoch(self, features: Tensor, workspace: FitWorkspace,
                       rng: np.random.Generator
                       ) -> tuple[Tensor, Tensor, Tensor]:
        """One sampled-mode epoch: batch draw → minibatch GCN forward →
        subsampled modularity → edge/negative-sampled reconstruction.

        Every per-epoch cost is bounded by the sample-size knobs — no
        O(N·d) forward, no O(N²) (or dense-block) loss — which is what
        makes 100k–1M-node graphs trainable.  Both loss terms are
        unbiased estimators of their full-batch counterparts *for the
        batch membership matrix* (see
        :func:`~repro.core.modularity.sampled_modularity_tensor` and
        :func:`_sampled_reconstruction`); the minibatch forward itself is
        the standard fanout-bounded GraphSAGE-style estimate of the full
        convolution, exact whenever ``fanout`` ≥ the maximum degree.

        Returns ``(q_tilde, recon, p)`` where ``p`` holds the batch
        membership rows (what the epoch record's rigidity is computed
        on).
        """
        cfg = self.config
        idx = workspace.batch_indices(rng, cfg.batch_nodes)
        z = _minibatch_forward(self.encoder, features, workspace, idx,
                               cfg.fanout, rng)
        p = z.softmax(axis=-1)
        q_tilde = sampled_modularity_tensor(
            p, idx, workspace.prox, workspace.degrees, workspace.two_m,
            workspace.num_nodes, workspace.prox_diagonal())
        decoder_input = p if cfg.decoder_source == "membership" else z
        recon, num_pos, num_neg = _sampled_reconstruction(
            decoder_input, workspace.recon_block(idx), cfg.edge_samples,
            cfg.negative_samples, rng)
        registry = metrics.registry()
        registry.counter("sample.nodes").inc(int(idx.size))
        registry.counter("sample.edges").inc(num_pos)
        registry.counter("sample.negatives").inc(num_neg)
        return q_tilde, recon, p

    def _reconstruction_loss(self, p: Tensor, workspace: FitWorkspace,
                             rng: np.random.Generator) -> Tensor:
        """High-order reconstruction ``L_R`` (Eq. 17) on ``Â = σ(PPᵀ)``.

        The paper sums Eq. 17 over all pairs; we reduce by the pair count so
        the two loss terms of Eq. 18 share a common O(1) scale and β₁/β₂
        keep their balancing role across graph sizes.  For large graphs a
        random node block is reconstructed per epoch (same mean scale).
        """
        if workspace.sample_nodes is None:
            logits = p @ p.T
            return F.binary_cross_entropy_with_logits(
                logits, workspace.dense_target(), "mean")
        idx = workspace.sample_indices(rng)
        block = p[idx]
        logits = block @ block.T
        return F.binary_cross_entropy_with_logits(
            logits, workspace.target_block(idx), "mean")

    # ------------------------------------------------------------------ #
    # Checkpointing                                                       #
    # ------------------------------------------------------------------ #
    def _checkpoint_setup(self, graph: Graph, resume_from: str | None):
        """Build this fit's :class:`CheckpointManager` (if any) and load
        the snapshot to resume from (if asked).  Returns
        ``(manager, (arrays, meta) | None)``."""
        cfg = self.config
        directory = resume_from if resume_from is not None \
            else cfg.checkpoint_dir
        if directory is None:
            return None, None
        manager = CheckpointManager.for_fit(directory, graph, cfg)
        resume = None
        if resume_from is not None:
            resume = manager.load_latest()
            if resume is None:
                warnings.warn(
                    f"resume_from={resume_from!r}: no usable checkpoint "
                    f"under {manager.directory}; starting fresh",
                    RuntimeWarning, stacklevel=3)
            else:
                meta = resume[1]
                metrics.registry().counter("checkpoint.resumes").inc()
                events.emit("checkpoint_resume",
                            snapshot=meta.get("kind"),
                            restart=meta.get("restart"),
                            epoch=meta.get("epoch"))
        return manager, resume

    def _save_epoch_checkpoint(self, manager, *, restart: int, epoch: int,
                               rng, optimizer, guard, early, reseeds: int,
                               fit_ctx) -> None:
        """Snapshot everything a bit-exact resume of this restart needs:
        weights, optimizer moments + scalars, RNG state, epoch history,
        early-stopping state, guard budgets — and (serial multi-restart
        fits) the best-so-far of the restarts already completed."""
        best_loss, best_state, best_q, stall = early
        opt_state = optimizer.state_dict()
        arrays = _pack("enc", self.encoder.state_dict())
        arrays.update({f"opt/b_{i}": buf
                       for i, buf in enumerate(opt_state["buffers"])})
        if best_state is not None:
            arrays.update(_pack("best", best_state))
        meta = {
            "kind": "epoch",
            "restart": restart,
            "epoch": epoch,
            "rng_state": rng.bit_generator.state,
            "history": self.history,
            "early": {"best_loss": _finite_or_none(best_loss),
                      "best_q": _finite_or_none(best_q),
                      "stall": stall,
                      "has_best": best_state is not None},
            "opt_buffers": len(opt_state["buffers"]),
            "opt_scalars": opt_state["scalars"],
            "guard": guard.state() if guard is not None else None,
            "reseeds": reseeds,
            "dtype": self.config.dtype,
            "fit": None,
        }
        if fit_ctx is not None:
            meta["fit"] = {"best_q": _finite_or_none(fit_ctx["q"]),
                           "best_restart": fit_ctx["restart"],
                           "has_state": fit_ctx["state"] is not None,
                           "best_history": fit_ctx["history"]}
            if fit_ctx["state"] is not None:
                arrays.update(_pack("fitbest", fit_ctx["state"]))
        manager.save_epoch(arrays, meta, restart, epoch)

    def _load_epoch_checkpoint(self, resume, rng, optimizer, guard):
        """Restore a mid-restart snapshot in place; returns the loop
        state ``(best_loss, best_state, best_q, stall, reseeds)``."""
        arrays, meta = resume
        self.encoder.load_state_dict(_unpack(arrays, "enc"))
        optimizer.load_state_dict({
            "buffers": [arrays[f"opt/b_{i}"]
                        for i in range(int(meta["opt_buffers"]))],
            "scalars": meta["opt_scalars"]})
        # One Generator object feeds init, dropout and recon sampling, so
        # restoring its bit-generator state resumes every random stream.
        rng.bit_generator.state = meta["rng_state"]
        self.history = [dict(record) for record in meta["history"]]
        if guard is not None:
            if meta.get("guard"):
                guard.load_state(meta["guard"])
            guard.commit()  # the snapshot is a good state: recovery point
        early = meta["early"]
        best_loss = np.inf if early["best_loss"] is None \
            else float(early["best_loss"])
        best_q = -np.inf if early["best_q"] is None \
            else float(early["best_q"])
        best_state = _unpack(arrays, "best") if early["has_best"] else None
        return (best_loss, best_state, best_q, int(early["stall"]),
                int(meta.get("reseeds", 0)))

    def _save_final(self, manager) -> None:
        """Persist the selected weights once the whole fit finished, so a
        later ``resume_from`` restores instantly instead of retraining."""
        manager.save_final(_pack("enc", self.encoder.state_dict()), {
            "kind": "final",
            "selection_modularity": _finite_or_none(
                self.selection_modularity),
            "history": self.history,
            "dtype": self.config.dtype,
        })

    def _restore_final(self, graph: Graph, arrays, meta) -> "AnECI":
        cfg = self.config
        self.encoder = GCNEncoder(
            self.num_features, (*cfg.hidden_dims, cfg.num_communities),
            rng=np.random.default_rng(cfg.seed), dropout=cfg.dropout,
            dtype=np.dtype(cfg.dtype))
        self.encoder.load_state_dict(_unpack(arrays, "enc"))
        self.history = [dict(record) for record in meta["history"]]
        self.selection_modularity = -np.inf \
            if meta["selection_modularity"] is None \
            else float(meta["selection_modularity"])
        self._fitted_graph = graph
        self._fit_workspace = None
        self._adj_norm_memo = None
        return self

    # ------------------------------------------------------------------ #
    # Inference                                                           #
    # ------------------------------------------------------------------ #
    def embed(self, graph: Graph | None = None) -> np.ndarray:
        """Return the embedding matrix ``Z`` for ``graph`` (default: the
        graph the model was fitted on)."""
        if self.encoder is None:
            raise RuntimeError("call fit() before embed()")
        graph = graph or self._fitted_graph
        adj_norm = self._inference_adj_norm(graph)
        dtype = np.dtype(self.config.dtype)
        self.encoder.eval()
        with no_grad(), use_backend(self.config.backend):
            z = self.encoder(
                Tensor(np.asarray(graph.features, dtype=dtype)), adj_norm)
        return z.data.copy()

    def _inference_adj_norm(self, graph: Graph) -> sp.csr_matrix:
        """The normalised adjacency for inference on ``graph``.

        For the graph the model was fitted on this is the fit
        workspace's cached matrix — no rebuild; any other graph's
        normalisation is memoised per graph object so repeated
        ``embed``/``membership``/``assign_communities`` calls pay for it
        once.
        """
        workspace = self._fit_workspace
        if workspace is not None and graph is self._fitted_graph:
            return workspace.adj_norm
        memo = self._adj_norm_memo
        if memo is not None and memo[0] is graph:
            return memo[1]
        adj_norm = normalized_adjacency(graph.adjacency)
        self._adj_norm_memo = (graph, adj_norm)
        return adj_norm

    def fit_transform(self, graph: Graph, callback=None,
                      workers: int | None = None,
                      resume_from: str | None = None) -> np.ndarray:
        return self.fit(graph, callback=callback, workers=workers,
                        resume_from=resume_from).embed(graph)

    def membership(self, graph: Graph | None = None) -> np.ndarray:
        """Soft community membership ``P = softmax(Z)`` (Eq. 3)."""
        return F.stable_softmax(self.embed(graph), axis=1)

    def assign_communities(self, graph: Graph | None = None) -> np.ndarray:
        """Hard community labels ``argmax_k pᵢᵏ`` (Section VI-D)."""
        return self.membership(graph).argmax(axis=1)

    def anomaly_scores(self, graph: Graph | None = None,
                       use_attributes: bool = True) -> np.ndarray:
        """Node anomaly scores (Section VI-C).

        Membership entropy catches structural outliers; the
        community-attribute inconsistency term catches attribute and
        combined outliers.  Set ``use_attributes=False`` for the pure
        entropy score (e.g. on identity-feature graphs).
        """
        graph = graph or self._fitted_graph
        membership = self.membership(graph)
        if not use_attributes:
            return membership_entropy_scores(membership)
        return community_anomaly_scores(membership, graph.features)

    def export_serving(self, directory: str, graph: Graph | None = None,
                       meta: dict | None = None) -> str:
        """Publish this fit's embeddings to a serving store; return the
        version key.

        One forward pass produces the embedding matrix and its softmax
        membership; both land in :class:`repro.serve.store.EmbeddingStore`
        under ``directory`` as float32 shards.  The version is the
        content-derived :func:`repro.resilience.checkpoint.run_key` of
        (graph, config), so re-exporting the same fit overwrites its own
        version while any changed fit publishes a fresh one — and
        ``repro serve run`` can hot-reload between them.
        """
        if self.encoder is None:
            raise RuntimeError("call fit() before export_serving()")
        from ..serve.store import EmbeddingStore
        graph = graph or self._fitted_graph
        embeddings = self.embed(graph)
        memberships = F.stable_softmax(embeddings, axis=1)
        version = run_key(graph, self.config)
        info = {"model": "aneci",
                "config": config_fingerprint(self.config),
                "graph": getattr(graph, "name", None)}
        if meta:
            info.update(meta)
        EmbeddingStore(directory).publish(
            embeddings.astype(np.float32, copy=False),
            memberships.astype(np.float32, copy=False), version, meta=info)
        return version


def _minibatch_forward(encoder, features: Tensor, workspace: FitWorkspace,
                       idx: np.ndarray, fanout: int,
                       rng: np.random.Generator) -> Tensor:
    """Fanout-bounded minibatch GCN forward over the batch ``idx``.

    Builds one rectangular block matrix per conv layer from the output
    seeds down to the inputs: layer ``ℓ``'s block rows are its output
    nodes and its columns the union of their (sampled) neighbours, which
    become the next layer down's rows.  Each block row holds the node's
    full normalised-adjacency row when its degree is within ``fanout``,
    else ``fanout`` neighbours sampled with replacement and rescaled by
    ``deg/fanout`` (an unbiased row estimate — see
    :class:`repro.nn.backend.NeighborSampler`).  Because ``adj_norm``
    carries self-loops, ``fanout`` ≥ the maximum degree keeps every row
    exact and the result is bit-identical to
    ``encoder(features, adj_norm)[idx]``.

    The neighbour draws come from the fit's single RNG *before* kernel
    dispatch, so the sample stream — and hence the whole trajectory — is
    bit-identical across backends, dtypes and worker counts.
    """
    sampler = workspace.neighbor_sampler(fanout)
    num_layers = len(encoder.convs)
    blocks = []
    seeds = np.asarray(idx, dtype=np.int64)
    for _ in range(num_layers):
        out_ptr, cols, vals = sampler.sample(seeds, rng)
        in_nodes = np.unique(cols)
        local_cols = np.searchsorted(in_nodes, cols)
        block = sp.csr_matrix(
            (vals, local_cols.astype(np.int32, copy=False),
             out_ptr.astype(np.int32, copy=False)),
            shape=(seeds.size, in_nodes.size))
        blocks.append(block)
        seeds = in_nodes
    blocks.reverse()
    return encoder.forward_blocks(features[seeds], blocks)


def _sampled_reconstruction(dec: Tensor, block: sp.csr_matrix,
                            edge_samples: int, negative_samples: int,
                            rng: np.random.Generator
                            ) -> tuple[Tensor, int, int]:
    """Edge/negative-sampled estimate of the block-mean BCE (Eq. 17).

    A stratified estimator of ``BCE_mean(σ(D Dᵀ), T)`` over the ``S×S``
    batch block ``T`` without materialising any ``S×S`` matrix:
    ``edge_samples`` positive entries are drawn uniformly (with
    replacement) from the block's stored entries and
    ``edge_samples × negative_samples`` zero pairs uniformly by
    rejection against the entry codes, then the two stratum means are
    recombined with their population weights ``nnz/S²`` and
    ``(S²−nnz)/S²``.  The expectation over draws equals the exact
    block-mean loss, so the full-batch and sampled objectives share the
    same O(1) scale and ``β₂`` keeps its role.

    Returns ``(loss, positives_drawn, negatives_drawn)``.
    """
    s = block.shape[0]
    total = s * s
    nnz = int(block.nnz)
    backend = _active_backend()
    dtype = dec.data.dtype
    terms = []
    num_pos = num_neg = 0
    if nnz:
        num_pos = int(edge_samples)
        entry_ids = np.asarray(
            backend.sample_pairs(rng, nnz, num_pos), dtype=np.int64)
        rows = np.searchsorted(block.indptr, entry_ids, side="right") - 1
        cols = block.indices[entry_ids].astype(np.int64, copy=False)
        targets = block.data[entry_ids].astype(dtype, copy=False)
        logits = (dec[rows] * dec[cols]).sum(axis=1)
        pos_mean = F.binary_cross_entropy_with_logits(logits, targets,
                                                      "mean")
        terms.append(pos_mean * (nnz / total))
    if nnz < total:
        num_neg = int(edge_samples) * int(negative_samples)
        # Entry codes are strictly increasing for a sorted-index CSR
        # block, so zero-pair rejection is one binary search per draw.
        entry_codes = (np.repeat(np.arange(s, dtype=np.int64),
                                 np.diff(block.indptr)) * s
                       + block.indices)
        kept_chunks: list[np.ndarray] = []
        kept_total = 0
        while kept_total < num_neg:
            cand = np.asarray(
                backend.sample_pairs(rng, total, num_neg), dtype=np.int64)
            slot = np.searchsorted(entry_codes, cand)
            stored = np.zeros(cand.size, dtype=bool)
            inside = slot < entry_codes.size
            stored[inside] = entry_codes[slot[inside]] == cand[inside]
            kept = cand[~stored]
            kept_chunks.append(kept)
            kept_total += kept.size
        codes = np.concatenate(kept_chunks)[:num_neg]
        rows = codes // s
        cols = codes - rows * s
        logits = (dec[rows] * dec[cols]).sum(axis=1)
        neg_mean = F.binary_cross_entropy_with_logits(
            logits, np.zeros(num_neg, dtype=dtype), "mean")
        terms.append(neg_mean * ((total - nnz) / total))
    loss = terms[0] if len(terms) == 1 else terms[0] + terms[1]
    return loss, num_pos, num_neg


def _pack(prefix: str, state: dict) -> dict:
    """Namespace a state dict's keys for one flat checkpoint archive."""
    return {f"{prefix}/{key}": value for key, value in state.items()}


def _unpack(arrays: dict, prefix: str) -> dict:
    """Inverse of :func:`_pack` for one namespace."""
    start = prefix + "/"
    return {key[len(start):]: arrays[key]
            for key in arrays if key.startswith(start)}


def _finite_or_none(value: float) -> float | None:
    """Strict-JSON-safe scalar for checkpoint meta (±inf/NaN → None)."""
    value = float(value)
    return value if np.isfinite(value) else None


def _restart_task(graph: Graph, config: AnECIConfig, seed: int,
                  restart: int) -> tuple[dict, float, list[dict]]:
    """One restart as a pure, picklable task for :mod:`repro.parallel`.

    Returns the trained weights, the selection modularity and the epoch
    history — everything the parent needs to pick a winner without the
    model object crossing the process boundary.
    """
    model = AnECI(graph.num_features, config=config)
    model._fit_once(graph, None, seed, restart=restart)
    return model.encoder.state_dict(), model.selection_modularity, model.history


# Re-export so ``from repro.core.aneci import AnECIPlus`` works; the class
# definition lives in denoise.py to keep Algorithm 1 in one place.
from .denoise import AnECIPlus  # noqa: E402  (circular-free: denoise imports nothing from here at import time)
