"""AnECI+ — the two-stage denoising variant (Algorithm 1).

Stage 1 trains a plain AnECI model and scores every edge by the cosine
anomaly ``s(e) = 1 − cos(zᵢ, zⱼ)``.  The drop ratio is derived from the
average anomaly score through the smoothing function ψ, the top-ρ scored
edges are removed, and stage 2 retrains AnECI (same hyper-parameters) on
the cleaned graph.

The paper prints ``ψ(x) = γ / (1 + exp(α(x − β)))`` while describing ψ as
"an incremental function" whose output should grow with the attack scale.
The printed form *decreases* in ``x``; we implement the increasing sigmoid
``ψ(x) = γ · σ(α(x − β))``, which matches the stated intent and the fixed
constants β = 0.5, γ = 0.75.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.graph import Graph
from ..obs import events, metrics, store, trace
from .scores import edge_anomaly_scores

__all__ = ["AnECIPlus", "DenoiseResult", "smoothing_psi"]


def _finite_or_none(value: float) -> float | None:
    """Strict-JSON-safe scalar for ledger entries (±inf/NaN → None)."""
    value = float(value)
    return value if np.isfinite(value) else None


def smoothing_psi(x: float, alpha: float, beta: float = 0.5,
                  gamma: float = 0.75) -> float:
    """Drop-ratio smoothing ``ψ(x) = γ·σ(α(x − β))`` mapping [0,1]→[0,γ]."""
    return float(gamma / (1.0 + np.exp(-alpha * (x - beta))))


@dataclass
class DenoiseResult:
    """Diagnostics of the denoising phase."""

    drop_ratio: float
    num_dropped: int
    dropped_edges: np.ndarray
    mean_anomaly_score: float


class AnECIPlus:
    """AnECI with the Algorithm-1 denoising front end.

    Parameters
    ----------
    num_features / num_communities / **kwargs:
        Forwarded to :class:`~repro.core.aneci.AnECI` for both stages.
    alpha / beta / gamma:
        ψ parameters; the paper fixes β = 0.5 and γ = 0.75 and tunes α per
        dataset and attack (Section VI-B2).
    """

    def __init__(self, num_features: int, num_communities: int | None = None,
                 alpha: float = 4.0, beta: float = 0.5, gamma: float = 0.75,
                 **kwargs):
        from .aneci import AnECI
        self._factory = lambda: AnECI(num_features, num_communities, **kwargs)
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.stage1: "AnECI | None" = None
        self.stage2: "AnECI | None" = None
        self.denoise_result: DenoiseResult | None = None
        self._denoised_graph: Graph | None = None

    # ------------------------------------------------------------------ #
    def fit(self, graph: Graph, workers: int | None = None,
            resume_from: str | None = None) -> "AnECIPlus":
        """Run both phases of Algorithm 1 on ``graph``.

        ``workers`` is forwarded to both stage fits, parallelising their
        ``n_init`` restarts (see :meth:`repro.core.aneci.AnECI.fit`).

        ``resume_from`` (a checkpoint directory) gives **stage-level
        resume**: each stage trains on a different graph, so the two
        fits occupy distinct run keys under the same directory — a
        completed stage 1 restores from its final snapshot without
        retraining, a half-done stage 2 continues mid-run.

        With ``REPRO_RUN_DIR`` set the whole pass records a
        ``denoise:<run key>`` ledger entry (keyed by the *input* graph
        and the shared stage config); the two stage fits additionally
        record their own ``fit:`` entries.
        """
        if not store.enabled():
            return self._fit_impl(graph, workers, resume_from)
        from ..resilience.checkpoint import config_fingerprint, run_key
        cfg = self._factory().config
        with store.capture_run(
                "denoise", f"denoise:{run_key(graph, cfg)}",
                model="aneci+",
                graph={"name": graph.name, "nodes": graph.num_nodes,
                       "edges": graph.num_edges,
                       "features": graph.num_features},
                config=config_fingerprint(cfg), dtype=str(cfg.dtype),
                psi={"alpha": self.alpha, "beta": self.beta,
                     "gamma": self.gamma}) as run:
            self._fit_impl(graph, workers, resume_from)
            result = self.denoise_result
            run["final"] = {
                "drop_ratio": result.drop_ratio,
                "edges_dropped": result.num_dropped,
                "mean_anomaly_score": result.mean_anomaly_score,
                "stage2_modularity": _finite_or_none(
                    self.stage2.selection_modularity),
            }
        return self

    def _fit_impl(self, graph: Graph, workers: int | None,
                  resume_from: str | None) -> "AnECIPlus":
        with trace.span("denoise/stage1"):
            self.stage1 = self._factory().fit(graph, workers=workers,
                                              resume_from=resume_from)
            embedding = self.stage1.embed(graph)

        with trace.span("denoise/score"):
            edges = graph.edge_list()
            scores = edge_anomaly_scores(embedding, edges)
            # s(e) ∈ [0, 2]; fold into [0, 1] so ψ's β = 0.5 sits mid-range.
            mean_score = float(np.clip(scores.mean() / 2.0, 0.0, 1.0))
            drop_ratio = smoothing_psi(mean_score, self.alpha, self.beta,
                                       self.gamma)

            num_drop = int(round(drop_ratio * len(edges)))
            if num_drop > 0:
                order = np.argsort(scores)[::-1]
                dropped = edges[order[:num_drop]]
                denoised = graph.remove_edges(dropped)
            else:
                dropped = np.empty((0, 2), dtype=np.int64)
                denoised = graph
        registry = metrics.registry()
        registry.counter("denoise.edges_scored").inc(len(edges))
        registry.counter("denoise.edges_dropped").inc(num_drop)
        events.emit("denoise", edges_scored=len(edges),
                    edges_dropped=num_drop, drop_ratio=drop_ratio,
                    mean_anomaly_score=mean_score)
        self.denoise_result = DenoiseResult(
            drop_ratio=drop_ratio, num_dropped=num_drop,
            dropped_edges=dropped, mean_anomaly_score=mean_score)
        self._denoised_graph = denoised

        with trace.span("denoise/stage2"):
            self.stage2 = self._factory().fit(denoised, workers=workers,
                                              resume_from=resume_from)
        return self

    # ------------------------------------------------------------------ #
    def embed(self, graph: Graph | None = None) -> np.ndarray:
        """Stage-2 embedding (on the denoised graph by default)."""
        self._require_fitted()
        return self.stage2.embed(graph or self._denoised_graph)

    def fit_transform(self, graph: Graph, workers: int | None = None,
                      resume_from: str | None = None) -> np.ndarray:
        return self.fit(graph, workers=workers,
                        resume_from=resume_from).embed()

    def membership(self, graph: Graph | None = None) -> np.ndarray:
        self._require_fitted()
        return self.stage2.membership(graph or self._denoised_graph)

    def assign_communities(self, graph: Graph | None = None) -> np.ndarray:
        return self.membership(graph).argmax(axis=1)

    def anomaly_scores(self, graph: Graph | None = None) -> np.ndarray:
        self._require_fitted()
        return self.stage2.anomaly_scores(graph or self._denoised_graph)

    def export_serving(self, directory: str, graph: Graph | None = None,
                       meta: dict | None = None) -> str:
        """Publish the stage-2 fit to a serving store (see
        :meth:`AnECI.export_serving`); the version key derives from the
        denoised graph, so a different noise draw exports separately."""
        self._require_fitted()
        info = {"model": "aneci_plus"}
        if meta:
            info.update(meta)
        return self.stage2.export_serving(
            directory, graph or self._denoised_graph, meta=info)

    @property
    def denoised_graph(self) -> Graph:
        self._require_fitted()
        return self._denoised_graph

    def _require_fitted(self) -> None:
        if self.stage2 is None:
            raise RuntimeError("call fit() before using the model")
