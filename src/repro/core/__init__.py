"""AnECI core: model, modularity, scores, denoising."""

from .aneci import AnECI, AnECIPlus
from .config import TASK_EPOCHS, AnECIConfig
from .denoise import DenoiseResult, smoothing_psi
from .encoder import GCNEncoder
from .modularity import (generalized_modularity_tensor, modularity_loss_terms,
                         newman_modularity, sampled_modularity_tensor,
                         soft_modularity)
from .scores import (community_anomaly_scores, community_attribute_scores,
                     defense_score, edge_anomaly_scores,
                     membership_entropy_scores, rigidity)
from .workspace import (FitWorkspace, WorkspaceCache, fit_fingerprint,
                        get_workspace, workspace_cache)

__all__ = [
    "AnECI", "AnECIPlus", "AnECIConfig", "TASK_EPOCHS",
    "GCNEncoder", "DenoiseResult", "smoothing_psi",
    "newman_modularity", "soft_modularity", "modularity_loss_terms",
    "generalized_modularity_tensor", "sampled_modularity_tensor",
    "FitWorkspace", "WorkspaceCache", "get_workspace", "workspace_cache",
    "fit_fingerprint",
    "defense_score", "edge_anomaly_scores", "rigidity",
    "membership_entropy_scores", "community_attribute_scores",
    "community_anomaly_scores",
]
