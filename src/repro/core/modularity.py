"""The paper's generalised modularity function (Section IV-C).

Three variants are provided:

* :func:`newman_modularity` — the classic first-order, hard-partition
  modularity ``Q`` of Eq. 4 (also the community-detection metric).
* :func:`soft_modularity` — numpy evaluation of the generalised
  ``Q̃ = tr(Pᵀ B̃ P) / (2M̃)`` (Eq. 14) given any proximity matrix and any
  soft membership matrix.
* :func:`modularity_loss_terms` + :func:`generalized_modularity_tensor` —
  the differentiable version used as AnECI's training signal.

Implementation note: ``B̃ = Ã − k̃ k̃ᵀ / (2M̃)`` is a sparse matrix minus a
rank-one correction; materialising it is O(N²).  We instead expand

    tr(Pᵀ B̃ P) = tr(Pᵀ Ã P) − ‖Pᵀ k̃‖² / (2M̃),

which keeps every operation sparse or ``N × K``.  Following the
first-order identity ``Σᵢⱼ Aᵢⱼ = 2M`` we take ``2M̃ = Σᵢⱼ Ãᵢⱼ`` (the
paper's M̃ notation folds the factor of two into the symbol).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..nn import Tensor, spmm

__all__ = [
    "newman_modularity",
    "soft_modularity",
    "modularity_loss_terms",
    "generalized_modularity_tensor",
    "sampled_modularity_tensor",
]


def newman_modularity(adjacency: sp.spmatrix, labels: np.ndarray) -> float:
    """Classic modularity ``Q`` (Eq. 4) of a hard partition.

    Used as the community-detection evaluation metric (Fig. 7).
    """
    adj = sp.coo_matrix(adjacency, dtype=np.float64)
    labels = np.asarray(labels)
    if labels.shape[0] != adj.shape[0]:
        raise ValueError("labels must cover every node")
    degrees = np.zeros(adj.shape[0], dtype=np.float64)
    np.add.at(degrees, adj.row, adj.data)
    two_m = degrees.sum()
    if two_m == 0:
        return 0.0
    # One pass over the edge list: an edge is internal iff both endpoints
    # share a community code, so per-community internal weight and degree
    # mass are two bincounts — no per-community ``adj[np.ix_()]`` slicing.
    _, codes = np.unique(labels, return_inverse=True)
    k = codes.max() + 1
    row_codes = codes[adj.row]
    internal_mask = row_codes == codes[adj.col]
    internal = np.bincount(row_codes[internal_mask],
                           weights=adj.data[internal_mask], minlength=k)
    degree_sums = np.bincount(codes, weights=degrees, minlength=k)
    return float(np.sum(internal / two_m - (degree_sums / two_m) ** 2))


def modularity_loss_terms(proximity: sp.spmatrix) -> tuple[sp.csr_matrix, np.ndarray, float]:
    """Precompute the constants of ``Q̃``: ``(Ã, k̃, 2M̃)``."""
    prox = sp.csr_matrix(proximity, dtype=np.float64)
    degrees = np.asarray(prox.sum(axis=1)).ravel()
    two_m = float(degrees.sum())
    if two_m <= 0:
        raise ValueError("proximity matrix has no mass; cannot normalise")
    return prox, degrees, two_m


def generalized_modularity_tensor(membership: Tensor, proximity: sp.csr_matrix,
                                  degrees: np.ndarray, two_m: float) -> Tensor:
    """Differentiable ``Q̃ = [tr(PᵀÃP) − ‖Pᵀk̃‖²/(2M̃)] / (2M̃)`` (Eq. 14)."""
    observed = (membership * spmm(proximity, membership)).sum()
    weighted = membership * Tensor(degrees[:, None])
    column_sums = weighted.sum(axis=0)
    expected = (column_sums * column_sums).sum() * (1.0 / two_m)
    return (observed - expected) * (1.0 / two_m)


def sampled_modularity_tensor(membership: Tensor, idx: np.ndarray,
                              proximity: sp.csr_matrix, degrees: np.ndarray,
                              two_m: float, num_nodes: int,
                              prox_diag: np.ndarray) -> Tensor:
    """Unbiased subsample estimate of ``Q̃`` from a node batch (Eq. 14).

    ``membership`` holds the soft membership rows of the ``idx`` nodes
    only (a without-replacement uniform sample of the graph), so the
    epoch touches just the ``idx × idx`` block of the proximity — never
    the full matrix.  Both traces are built from Horvitz–Thompson
    weights for simple random sampling without replacement: node pairs
    ``i ≠ j`` are observed with probability ``s(s−1)/(n(n−1))`` and
    single nodes with ``s/n``, so off-diagonal and diagonal sums get
    separate inverse-probability scales and the estimator's expectation
    over batches equals the exact ``Q̃`` of the same membership matrix.
    The rank-one ``‖Pᵀk̃‖²`` term uses the identity
    ``‖Σᵢ vᵢ‖² = Σ_{i≠j} vᵢ·vⱼ + Σᵢ ‖vᵢ‖²`` so its cross and diagonal
    parts can be reweighted separately (a plain ``(n/s)²`` scale on the
    squared sum would be biased upward by the sample variance).

    When ``idx`` covers every node both scales are 1 and the value
    equals :func:`generalized_modularity_tensor` exactly (up to
    floating-point association).
    """
    s = int(idx.size)
    n = int(num_nodes)
    if s < 2:
        raise ValueError("sampled modularity needs at least 2 nodes")
    f_pair = (n * (n - 1.0)) / (s * (s - 1.0))
    f_node = n / float(s)
    dtype = membership.data.dtype
    block = proximity[idx][:, idx].tocsr()
    # tr(PᵀÃP): block total, then split the diagonal out so each part
    # carries its own inverse inclusion probability.
    observed_all = (membership * spmm(block, membership,
                                      transpose=block)).sum()
    diag = Tensor(prox_diag[idx].astype(dtype, copy=False)[:, None])
    diag_part = (diag * membership * membership).sum()
    observed = ((observed_all - diag_part) * f_pair + diag_part * f_node)
    # ‖Pᵀk̃‖² via the cross/diagonal split of the squared sum.
    weighted = membership * Tensor(degrees[idx][:, None])
    column_sums = weighted.sum(axis=0)
    total_sq = (column_sums * column_sums).sum()
    node_sq = (weighted * weighted).sum()
    expected = ((total_sq - node_sq) * f_pair + node_sq * f_node) \
        * (1.0 / two_m)
    return (observed - expected) * (1.0 / two_m)


def soft_modularity(proximity: sp.spmatrix, membership: np.ndarray) -> float:
    """Numpy evaluation of ``Q̃`` for any soft membership matrix."""
    prox, degrees, two_m = modularity_loss_terms(proximity)
    membership = np.asarray(membership, dtype=np.float64)
    observed = float(np.sum(membership * (prox @ membership)))
    column_sums = degrees @ membership
    expected = float(column_sums @ column_sums) / two_m
    return (observed - expected) / two_m
