#!/usr/bin/env python
"""CI chaos smoke for the serving guard.

Boots :class:`repro.serve.EmbeddingServer` over a synthetic clustered
store **under injected faults** (``REPRO_FAULTS``, default
``slow_index@p=0.2,seed=7,s=0.3;index_error@call=3``), drives the
retrying load generator plus a per-request correctness sweep, and
asserts the guard contract:

* every answer is shed (``503``), timed out (``504``) or a ``200``
  whose ids/scores are **bit-identical** to the clean exact-index
  ground truth — faults never surface as wrong answers;
* the breaker registered the faults (failures > 0, at least one trip)
  and shed/deadline counters are non-zero;
* once the faults stop, probe traffic walks the breaker back to
  ``/healthz`` ``ok``.

Run from the repo root::

    PYTHONPATH=src python tools/serve_chaos_smoke.py

Exits non-zero on any violated assertion.  Set ``REPRO_RUN_DIR`` to
also flush the ``serve:<version>`` run-ledger entry (CI uploads it).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import EmbeddingServer, EmbeddingStore, ExactIndex  # noqa: E402
from repro.serve.server import _read_response, load_generator  # noqa: E402

DEFAULT_PLAN = "slow_index@p=0.2,seed=7,s=0.3;index_error@call=3"

NODES, DIM, COMMUNITIES = 2000, 32, 6
PROBES = 24  # nodes checked for bit-identical answers under chaos
K = 10


def build_store(directory: str) -> None:
    rng = np.random.default_rng(11)
    centers = rng.standard_normal((COMMUNITIES, DIM)) * 4.0
    labels = rng.integers(0, COMMUNITIES, size=NODES)
    emb = (centers[labels]
           + rng.standard_normal((NODES, DIM))).astype(np.float32)
    memb = np.full((NODES, COMMUNITIES), 0.02, dtype=np.float32)
    memb[np.arange(NODES), labels] = 1.0
    memb /= memb.sum(axis=1, keepdims=True)
    EmbeddingStore(directory).publish(emb, memb, "chaos-smoke-v1")


async def _get(port: int, path: str):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
    await writer.drain()
    status, _, body = await _read_response(reader)
    writer.close()
    return status, json.loads(body)


async def main() -> int:
    os.environ.setdefault("REPRO_FAULTS", DEFAULT_PLAN)
    plan = os.environ["REPRO_FAULTS"]
    with tempfile.TemporaryDirectory(prefix="serve-chaos-") as directory:
        build_store(directory)
        # Clean ground truth: the guard hooks only fire on the server's
        # batch path, so a direct ExactIndex scan is fault-free.
        serving = EmbeddingStore(directory).load()
        exact = ExactIndex(serving)
        truth = {n: exact.similar_nodes(n, K) for n in range(PROBES)}

        # Aggressive guard settings so a smoke-sized run exercises the
        # whole ladder: tiny batches (each batch = one injection call),
        # no cache, 250 ms deadline vs 300 ms injected sleeps.
        server = EmbeddingServer(directory, cache_size=0, max_batch=8,
                                 deadline_ms=250, breaker_threshold=2,
                                 breaker_cooldown_ms=200)
        await server.start()
        print(f"chaos plan: {plan}")
        print(f"serving {NODES}x{DIM} store on port {server.port}")

        paths = [f"/similar?node={n}&k={K}" for n in range(PROBES)]
        report = await load_generator(
            "127.0.0.1", server.port, paths, total_requests=120,
            concurrency=6, retries=3, backoff_base_s=0.02,
            backoff_cap_s=0.2)
        print(f"load: statuses={report['statuses']} "
              f"retries={report['retries']} gave_up={report['gave_up']}")
        assert set(report["statuses"]) <= {200, 503, 504}, report["statuses"]
        assert report["statuses"].get(200, 0) > 0, "chaos was total"

        # Correctness sweep, still under faults: any 200 must be
        # bit-identical to the clean answer.
        wrong = checked = refused = 0
        for node in range(PROBES):
            for _ in range(6):
                status, body = await _get(server.port,
                                          f"/similar?node={node}&k={K}")
                assert status in (200, 503, 504), status
                if status == 200:
                    ids, scores = truth[node]
                    if (body["ids"] != ids.tolist()
                            or body["scores"] != scores.tolist()):
                        wrong += 1
                    checked += 1
                    break
                refused += 1
                await asyncio.sleep(0.05)
        print(f"correctness: {checked}/{PROBES} nodes verified, "
              f"{refused} shed/timeout answers, {wrong} wrong")
        assert wrong == 0, f"{wrong} wrong 200 answers under faults"
        assert checked > 0, "no 200 answers to verify"

        guard_stats = server.stats()["guard"]
        print(f"guard: shed={guard_stats['shed']} "
              f"deadline_timeouts={guard_stats['deadline_timeouts']} "
              f"breaker={guard_stats['breaker']}")
        assert guard_stats["breaker"]["failures"] > 0, "faults never bit"
        assert guard_stats["breaker"]["trips"] > 0, "breaker never tripped"
        assert (guard_stats["shed"]["total"]
                + guard_stats["deadline_timeouts"]) > 0, "nothing shed"

        # Faults off: the breaker must probe its way back to ok.
        del os.environ["REPRO_FAULTS"]
        recovered = False
        for _ in range(50):
            status, health = await _get(server.port, "/healthz")
            if status == 200 and health["status"] == "ok":
                recovered = True
                break
            await _get(server.port, f"/similar?node=0&k={K}")
            await asyncio.sleep(0.1)
        print(f"recovered: {recovered}")
        assert recovered, "breaker never recovered to ok"

        await server.stop()  # drains + flushes the run-ledger entry
    print("serve chaos smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
