"""Compare two training perf-benchmark result files and flag regressions.

Diffs the ``after_s`` timing of every case shared by a baseline and a
current ``BENCH_train.json`` (as written by
``benchmarks/test_perf_training.py``) and fails when any case slowed
down by more than ``--threshold``.

Run:  python tools/bench_compare.py BENCH_train.json /tmp/BENCH_train.json
      python tools/bench_compare.py old.json new.json --threshold 0.25 --warn-only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_payload(path: Path) -> dict:
    return json.loads(path.read_text())


def cases_by_name(payload: dict) -> dict[str, dict]:
    return {case["case"]: case for case in payload.get("cases", [])}


def compare(baseline: dict[str, dict], current: dict[str, dict],
            threshold: float) -> tuple[list[tuple], list[str]]:
    """Per-case rows plus the names of cases regressing past threshold."""
    rows, regressions = [], []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        curr = current.get(name)
        if base is None or curr is None:
            rows.append((name, base and base["after_s"],
                         curr and curr["after_s"], None, "missing"))
            continue
        ratio = curr["after_s"] / base["after_s"] if base["after_s"] else None
        status = "ok"
        if ratio is not None and ratio > 1.0 + threshold:
            status = "REGRESSION"
            regressions.append(name)
        rows.append((name, base["after_s"], curr["after_s"], ratio, status))
    return rows, regressions


def format_table(rows: list[tuple]) -> str:
    def fmt(value, spec):
        return format(value, spec) if value is not None else "-"

    lines = [f"{'case':24s} {'base_s':>9s} {'curr_s':>9s} "
             f"{'ratio':>7s}  status"]
    for name, base_s, curr_s, ratio, status in rows:
        lines.append(f"{name:24s} {fmt(base_s, '9.3f')} "
                     f"{fmt(curr_s, '9.3f')} {fmt(ratio, '7.2f')}  {status}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_train.json files by after_s per case.")
    parser.add_argument("baseline", type=Path,
                        help="tracked baseline BENCH_train.json")
    parser.add_argument("current", type=Path,
                        help="freshly produced BENCH_train.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional slowdown before a case "
                             "counts as a regression (default 0.30)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0 "
                             "(for noisy shared CI runners)")
    args = parser.parse_args(argv)

    base_payload = load_payload(args.baseline)
    curr_payload = load_payload(args.current)
    if base_payload.get("smoke") != curr_payload.get("smoke"):
        print("note: smoke flags differ between the two files — case "
              "configs are not the same size, ratios are indicative only")
    rows, regressions = compare(cases_by_name(base_payload),
                                cases_by_name(curr_payload), args.threshold)
    print(format_table(rows))

    if regressions:
        verb = "warning" if args.warn_only else "error"
        print(f"\n{verb}: {len(regressions)} case(s) regressed beyond "
              f"+{args.threshold:.0%}: {', '.join(regressions)}")
        return 0 if args.warn_only else 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
