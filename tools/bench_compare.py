"""Compare two perf-benchmark result files and flag regressions.

Diffs the per-case timing of every case shared by a baseline and a
current result file and fails when any case slowed down by more than
``--threshold``.  Works on every tracked benchmark format:
``BENCH_train.json`` (``benchmarks/test_perf_training.py``, timing key
``after_s``), ``BENCH_parallel.json``
(``benchmarks/test_perf_parallel.py``, same key — the best parallel
median), ``BENCH_dtype.json`` (``benchmarks/test_perf_dtype.py``,
``after_s`` = the float32 median), ``BENCH_backend.json``
(``benchmarks/test_perf_backend.py``, ``after_s`` = the compiled-backend
median) and ``BENCH_scale.json`` (``benchmarks/test_perf_scale.py``,
``after_s`` = the sampled-mode wall time — whole fit for the parity
case, marginal per-epoch time for the sampled-only scale cases, whose
``before_s`` is null because no full-batch contender fits in memory)
and ``BENCH_serve.json`` (``benchmarks/test_perf_serve.py``,
``after_s`` = seconds per served request for the load-generator cases,
per-batch/per-lookup/per-query time for the IVF, cached-argmax and
mmap cases; throughput-style fields like ``rps`` ride along as
context).

A missing baseline, or a baseline written by a smoke run (``"smoke":
true``), is not an error: CI compares against artifacts that may not
exist yet, so those cases print a note and exit 0.

``--ledger DIR`` additionally judges the current payload against the
**run-ledger history** of the same benchmark (the median ``after_s`` per
case across every recorded run — robust to one noisy runner where a
single-baseline diff is not) and records the fresh timings as a new
``bench:<benchmark>`` ledger entry, so the history grows with every CI
run that uploads the ledger artifact.

Run:  python tools/bench_compare.py BENCH_train.json /tmp/BENCH_train.json
      python tools/bench_compare.py old.json new.json --threshold 0.25 --warn-only
      python tools/bench_compare.py BENCH_train.json new.json --ledger /tmp/run-ledger
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def load_payload(path: Path) -> dict:
    return json.loads(path.read_text())


def cases_by_name(payload: dict) -> dict[str, dict]:
    return {case["case"]: case for case in payload.get("cases", [])}


def compare(baseline: dict[str, dict], current: dict[str, dict],
            threshold: float) -> tuple[list[tuple], list[str]]:
    """Per-case rows plus the names of cases regressing past threshold."""
    rows, regressions = [], []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        curr = current.get(name)
        if base is None or curr is None:
            rows.append((name, base and base["after_s"],
                         curr and curr["after_s"], None, "missing"))
            continue
        ratio = curr["after_s"] / base["after_s"] if base["after_s"] else None
        status = "ok"
        if ratio is not None and ratio > 1.0 + threshold:
            status = "REGRESSION"
            regressions.append(name)
        rows.append((name, base["after_s"], curr["after_s"], ratio, status))
    return rows, regressions


def format_table(rows: list[tuple]) -> str:
    def fmt(value, spec):
        return format(value, spec) if value is not None else "-"

    lines = [f"{'case':24s} {'base_s':>9s} {'curr_s':>9s} "
             f"{'ratio':>7s}  status"]
    for name, base_s, curr_s, ratio, status in rows:
        lines.append(f"{name:24s} {fmt(base_s, '9.3f')} "
                     f"{fmt(curr_s, '9.3f')} {fmt(ratio, '7.2f')}  {status}")
    return "\n".join(lines)


def judge_ledger(directory: Path, payload: dict,
                 threshold: float) -> list[dict]:
    """Judge ``payload`` against its ledger history, then record it.

    Smoke payloads get their own key suffix so shrunken-case timings
    never pollute the full-size history (and vice versa).
    """
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs import regress, store
    from repro.obs.store import RunLedger

    key = f"bench:{payload.get('benchmark', 'unknown')}"
    if payload.get("smoke"):
        key += ":smoke"
    current = {case["case"]: float(case["after_s"])
               for case in payload.get("cases", []) if "after_s" in case}
    ledger = RunLedger(str(directory))
    history = [entry.get("final") or {} for entry in ledger.entries(key)]
    findings = regress.bench_findings(current, history, threshold)
    ledger.append({"kind": "benchmark", "key": key,
                   "ts": round(time.time(), 6), "git": store.git_describe(),
                   "final": current, "regressions": findings})
    print(f"\nledger: {len(history)} prior run(s) under {key!r} "
          f"in {directory}; recorded seq "
          f"{ledger.summaries(key)[-1]['seq']}")
    for finding in findings:
        print(f"  [ledger] {finding['detail']}")
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_train.json files by after_s per case.")
    parser.add_argument("baseline", type=Path,
                        help="tracked baseline BENCH_train.json")
    parser.add_argument("current", type=Path,
                        help="freshly produced BENCH_train.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional slowdown before a case "
                             "counts as a regression (default 0.30)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0 "
                             "(for noisy shared CI runners)")
    parser.add_argument("--ledger", type=Path, default=None, metavar="DIR",
                        help="run-ledger directory: also judge the current "
                             "payload against the benchmark's recorded "
                             "history (median per case) and append it as a "
                             "new ledger entry")
    args = parser.parse_args(argv)

    curr_payload = load_payload(args.current)
    ledger_findings = []
    if args.ledger is not None:
        ledger_findings = judge_ledger(args.ledger, curr_payload,
                                       args.threshold)

    regressions: list[str] = []
    if not args.baseline.exists():
        print(f"no baseline: {args.baseline} does not exist — nothing to "
              "compare against yet, skipping")
    else:
        base_payload = load_payload(args.baseline)
        if base_payload.get("smoke"):
            print(f"no baseline: {args.baseline} was written by a smoke "
                  "run — its shrunken cases are not comparable, skipping")
        else:
            if base_payload.get("benchmark") != curr_payload.get("benchmark"):
                print(f"note: comparing different benchmarks "
                      f"({base_payload.get('benchmark')} vs "
                      f"{curr_payload.get('benchmark')}) — only shared case "
                      "names line up")
            if base_payload.get("smoke") != curr_payload.get("smoke"):
                print("note: smoke flags differ between the two files — "
                      "case configs are not the same size, ratios are "
                      "indicative only")
            rows, regressions = compare(cases_by_name(base_payload),
                                        cases_by_name(curr_payload),
                                        args.threshold)
            print(format_table(rows))

    flagged = len(regressions) + len(ledger_findings)
    if flagged:
        verb = "warning" if args.warn_only else "error"
        names = regressions + [f["field"] for f in ledger_findings]
        print(f"\n{verb}: {flagged} case(s) regressed beyond "
              f"+{args.threshold:.0%}: {', '.join(names)}")
        return 0 if args.warn_only else 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
