"""Generate docs/API.md by introspecting the public API.

Walks every subpackage's ``__all__``, collects signatures and first
docstring lines, and renders one markdown section per module.

Run:  python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.nn.backend",
    "repro.graph",
    "repro.core",
    "repro.baselines",
    "repro.attacks",
    "repro.anomalies",
    "repro.tasks",
    "repro.metrics",
    "repro.cluster",
    "repro.outliers",
    "repro.viz",
    "repro.experiments",
    "repro.obs",
    "repro.parallel",
    "repro.resilience",
    "repro.serve",
]

#: Hand-written markdown appended after a package's generated section;
#: survives regeneration because it lives here, not in docs/API.md.
PACKAGE_NOTES = {
    "repro.nn.backend": """\
### Backend selection

The training hot loops (spmm, the fused GCN layer, BCE-with-logits,
softmax, optimizer steps, per-epoch node sampling) dispatch through the
*active backend*, resolved once per fit from — in priority order —
`AnECIConfig.backend`, the `REPRO_BACKEND` environment variable, or the
`numpy` default; the global CLI `--backend` flag sets the env var.  The
`compiled` backend uses numba `@njit(parallel=True)` kernels where
numba is importable, probing each kernel byte-identical against the
numpy reference at first use and permanently falling back per-op
otherwise — so **every backend produces bit-identical embeddings** and
the choice only changes speed.  `repro profile` reports the resolved
backend plus the per-op fused-hit vs numpy-fallback counters
(`op_counts()`); `benchmarks/test_perf_backend.py` tracks the speedup
(repo-root `BENCH_backend.json`) with the embedding digests of both
backends recorded as the equivalence evidence.
""",
    "repro.core": """\
### Performance guide

`AnECI.fit` reuses every epoch-invariant constant through the
process-wide **fit workspace cache**: `get_workspace(graph, config)`
returns a `FitWorkspace` (normalised adjacency, high-order proximity,
modularity terms, densified reconstruction target) keyed by a
`fit_fingerprint` over the adjacency CSR arrays and the proximity/target
config knobs.  Restarts and unchanged-graph refits are cache hits;
structural mutations miss by construction.  Inspect traffic via the
`workspace.hits` / `workspace.misses` / `workspace.evictions` counters,
bound memory with `REPRO_WORKSPACE_CACHE_SIZE` (entries) and
`REPRO_WORKSPACE_DENSE_CAP` (max nodes for a dense sampled-path
target), and bypass it entirely with `workspace.cache_disabled()`.

The losses themselves run on fused single-node autograd kernels
(`repro.nn.fused_bce_with_logits`, transpose-cached `spmm`) that are
bit-exact against the historical op composition; toggle the reference
path with `repro.nn.functional.reference_loss_kernels()`.

Benchmarking:

```bash
# rewrite the tracked baseline (repo-root BENCH_train.json)
PYTHONPATH=src python -m pytest benchmarks/test_perf_training.py -q
# quick CI-sized run to a scratch file
REPRO_PERF_SMOKE=1 REPRO_BENCH_OUT=/tmp/BENCH_train.json \\
  PYTHONPATH=src python -m pytest benchmarks/test_perf_training.py -q
# per-case after_s diff; exits 1 on >30% slowdown unless --warn-only
python tools/bench_compare.py BENCH_train.json /tmp/BENCH_train.json
```

Each `BENCH_train.json` case records `before_s`/`after_s` medians
(reference vs optimised mode over interleaved repeats), per-epoch and
profiled backward times, and `max_loss_delta` — which must stay at
0.0: the overhaul changes wall-clock, never numerics.

### Scaling & sampled training

`AnECIConfig(train_mode="sampled")` (env `REPRO_TRAIN_MODE`, CLI
`--train-mode`) swaps the dense full-batch epoch for three unbiased
sampled estimators whose per-epoch cost depends on the sample-size
knobs, not on `n²`: a node-batch (`batch_nodes`, env
`REPRO_BATCH_NODES`) drawn per epoch; a Horvitz–Thompson subsample of
the generalised modularity (`sampled_modularity_tensor` — exact when
the batch covers the graph); an edge + k-negative reconstruction
estimator (`edge_samples`/`negative_samples`, env
`REPRO_EDGE_SAMPLES`/`REPRO_NEG_SAMPLES`) replacing the dense
σ(PPᵀ)-vs-target BCE; and a fanout-bounded neighbour-sampled GCN
forward (`fanout`, env `REPRO_FANOUT`; a fanout ≥ the maximum degree
reproduces the full forward bit-exactly).  Sampled-mode workspaces
never densify the reconstruction target (`workspace.dense_skipped`
counter + `workspace.dense_skipped_bytes` gauge record the avoided
allocation), so 100k–1M-node graphs from
`repro.graph.sparse_dcsbm` train in memory the dense path could never
touch.  The default `train_mode="full"` path is byte-identical to
previous releases; sampled fits are themselves deterministic — same
seed ⇒ same embedding at any worker count, across backends, and
through checkpoint/resume.  `repro profile` reports the resolved train
mode plus per-epoch node/edge/negative sample counts;
`benchmarks/test_perf_scale.py` tracks full-vs-sampled wall time,
quality parity (NMI/modularity gaps ≤ 0.02) and peak memory in the
repo-root `BENCH_scale.json`.
""",
    "repro.obs": """\
### Observability guide

All instrumentation is **zero-overhead until something subscribes**: the
event bus short-circuits with no sinks, `trace.span()` returns a shared
no-op without an active tracer, and the op profiler only patches the
autograd engine between `enable()`/`disable()` — results are
bit-identical either way.

CLI integration (flags go before the subcommand):

```bash
# stream epoch/denoise/restart/span records to JSONL
python -m repro --trace run.jsonl embed --method aneci+ --n-init 3 --out z.npy
# print the per-op autograd table after any command
python -m repro --profile evaluate --task community --method aneci
# dedicated profiling run: top-k op table + span tree + op coverage
python -m repro profile --dataset cora --scale 0.25 --epochs 20 --top 10
# machine-readable: evaluate/embed/profile all accept --json
python -m repro evaluate --task classification --json
```

Library usage:

```python
from repro.obs import events, metrics, trace, profile_ops

unsubscribe = events.BUS.subscribe(events.JsonlSink("run.jsonl"))
tracer = trace.Tracer()
with trace.activate(tracer), profile_ops() as prof:
    model.fit(graph)                  # spans: fit, fit/epoch, fit/setup/...
print(tracer.report())                # aggregated wall-time tree
print(prof.report(top=10))            # per-op fwd/bwd time + FLOP estimate
print(metrics.registry().snapshot())  # counters/gauges/timers
unsubscribe()
```

Benchmarks always trace: `benchmarks/_harness.py` installs a
process-wide tracer and `save_results(name, ...)` writes the aggregated
span tree plus the metrics snapshot to
`benchmarks/results/<name>.timing.json` next to each benchmark's result
JSON, then resets both so every benchmark gets its own breakdown.

### Run ledger & exporters

Set `REPRO_RUN_DIR` (CLI: global `--run-dir`, bare form →
`.repro/runs/`) and every fit / denoise pass / experiment runner /
benchmark leaves one durable entry in an append-only **run ledger**
(JSONL segments + an atomic index, the same tmp+fsync+rename discipline
as checkpoints): config fingerprint, dtype, worker count, git describe,
per-epoch loss/modularity history, final metrics, the span tree and
metric **deltas** attributable to the run, and the resilience-counter
deltas.  Entries are keyed by kind-qualified content-derived run keys
(`fit:<run key>`, `denoise:<run key>`, `exp:<name>:<graph>`,
`bench:<name>`), so re-running the same (graph, config) appends to the
same history.

```bash
python -m repro --run-dir embed --method aneci --out z.npy  # record
python -m repro obs runs list                # one line per entry
python -m repro obs show fit                 # full entry JSON
python -m repro obs diff fit                 # newest vs previous
python -m repro obs export fit --out traces/ # Chrome trace + Prometheus
python -m repro obs tail -n 5                # newest entries as JSONL
python -m repro obs regress fit --strict     # exit 3 on findings
```

`repro.obs.export` turns any span tree into Perfetto-loadable Chrome
trace-event JSON (stable path-derived `span_id`s, identical across
serial and pooled runs) and any metrics snapshot into Prometheus text
format.  `repro.obs.regress` judges each fresh entry against the
previous entry under the same key — loss-curve divergence (same key ⇒
deterministic ⇒ exact match), final-metric drops beyond
`REPRO_REGRESS_METRIC_DROP`, epoch-time ratios beyond
`REPRO_REGRESS_TIME_RATIO` (runs shorter than
`REPRO_REGRESS_MIN_SECONDS` are exempt) — emitting `regression` events
and the `obs.regressions` counter, warn-only.  `tools/bench_compare.py
--ledger DIR` extends the same idea to tracked `BENCH_*.json`
benchmarks, judging each payload against the median of its recorded
history.
""",
    "repro.parallel": """\
### Parallelism guide

`ParallelExecutor` maps **pure, picklable task functions** over a
`ProcessPoolExecutor` with deterministic semantics: each task gets an
explicitly derived seed, results are merged in task-index order, and
ties (e.g. equal restart modularities) break toward the lowest index —
so any worker count produces **bit-identical** output to a serial run.
Worker counts resolve as explicit argument > `REPRO_WORKERS` env var >
1 (serial); `"auto"`/`0` means `os.cpu_count()`, and unparsable or
negative values warn and fall back to serial.

Failure policy: a task's own exception always propagates, but
pool-level failures (a crashed child, an unpicklable task, a missing
`os.fork`) emit a `RuntimeWarning` plus a `parallel_fallback` event and
re-run every task serially — parallelism is an optimisation, never a
way to lose a run.

Consumers already wired in: `AnECI.fit(..., workers=N)` fans out
`n_init` restarts (the winner is re-materialised in the parent, and a
per-restart `restart` event is emitted either way);
`grid_search_aneci(..., workers=N)` fans out trials;
`experiments.runners.run_*` sweeps parallelise their outer axis; the
benchmark harness (`benchmarks/_harness.py`) opts in via
`REPRO_WORKERS`.  The CLI exposes all of this through the global
`--workers N` flag.

Telemetry crosses the process boundary: each worker captures its
`repro.obs` events, metrics and spans into a `ChildTelemetry` snapshot
that the parent replays in task order, so `--trace`/`--profile` output
is identical at any worker count.  Two things to know: the fit
workspace cache is per-process, so every worker rebuilds (cheaply, by
fingerprint) its own workspace; and nested parallelism is clamped —
`resolve_workers` returns 1 inside a pool worker.

```bash
REPRO_WORKERS=4 python -m repro embed --method aneci --n-init 8 --out z.npy
python -m repro --workers 4 experiment --name classification
# tracked benchmark: serial vs parallel medians + equivalence hash
PYTHONPATH=src python -m pytest benchmarks/test_perf_parallel.py -q
python tools/bench_compare.py BENCH_parallel.json /tmp/BENCH_parallel.json
```
""",
    "repro.resilience": """\
### Resilience guide

The fault-tolerant training runtime has three layers, all bit-invisible
while nothing goes wrong:

**Divergence guards.**  `AnECI._fit_once` checks every epoch's loss and
gradients for finiteness.  On divergence the `DivergenceGuard` applies
the `RecoveryPolicy` built from `AnECIConfig`: restore the last good
parameters + optimizer state, multiply the learning rate by
`lr_backoff`, escalate to a fresh-seed rebuild after `reseed_after`
consecutive failures, and raise `DivergenceError` once
`max_recoveries` is spent.  Set `divergence_policy="raise"` to fail
fast or `"off"` for the legacy keep-stepping behaviour
(`REPRO_DIVERGENCE_POLICY` is the env default).  Incidents surface as
`divergence`/`recovery` events plus `resilience.divergences` /
`resilience.recoveries` counters.

**Crash-safe checkpoints.**  With `AnECIConfig(checkpoint_dir=...)` —
or the CLI's global `--checkpoint-dir` — a `CheckpointManager`
atomically snapshots weights, optimizer moments + scalars, RNG state,
history, early-stopping and guard budgets every `checkpoint_every`
epochs (env: `REPRO_CHECKPOINT_EVERY`/`REPRO_CHECKPOINT_KEEP`), each
file checksummed and namespaced by a content-derived run key.

```python
model = AnECI(graph.num_features, num_communities=7,
              checkpoint_dir="ckpts", checkpoint_every=50)
model.fit(graph)                          # snapshots as it trains
fresh = AnECI(graph.num_features, num_communities=7)
fresh.fit(graph, resume_from="ckpts")     # exact continuation
```

Resume validates checksums and falls back past corrupt files
(`checkpoint_corrupt` event + warning); a resumed fit reproduces the
uninterrupted run's embedding bit-for-bit, multi-restart fits and both
`AnECIPlus` stages included.  CLI: `repro embed --resume`.

**Deterministic fault injection.**  `REPRO_FAULTS` (or
`faultinject.injected(...)` in tests) installs a plan of seeded faults —
`nan_loss@epoch=3`, `worker_crash@task=1,attempt=0`,
`timeout@task=2,s=5`, `checkpoint_corrupt@save=1`,
`nan_loss@p=0.2,seed=7` — that fire at exactly the same points every
run, pool workers included.  Every firing emits a `fault_injected`
event and bumps `faults.injected`, so chaos runs audit themselves.
CI's chaos-smoke leg runs the critical tests under crash + NaN
injection; `tests/test_resilience.py` holds the full contract.
""",
    "repro.serve": """\
### Serving guide

`AnECI.export_serving(dir)` / `AnECIPlus.export_serving(dir)` publish a
fitted model — float32 embeddings plus softmax memberships — into a
versioned store under `dir/versions/<run key>/`, written atomically and
BLAKE2b-checksummed; `EmbeddingStore.load()` maps the newest usable
version back read-only (`np.load(mmap_mode="r")`), warning and falling
back past a corrupt head exactly like the checkpoint store.

Indexes answer cosine k-NN with a deterministic total order (score
descending, then node id ascending) and a bit-identity contract between
batched and serial queries: at import the backend probes whether BLAS
GEMM columns equal per-query GEMV bit-for-bit and degrades honestly if
not.  `build_index(store)` resolves `REPRO_SERVE_INDEX` (`exact` |
`ivf`); the IVF backend clusters the store with `repro.cluster.kmeans`
(`REPRO_SERVE_CELLS`/`REPRO_SERVE_PROBES`) and widens its probe count
against exact search until recall@10 ≥ 0.95, falling back to exact —
with a warning and a `serve_index_fallback` event — when the floor is
unreachable.

The asyncio server micro-batches requests inside
`REPRO_SERVE_BATCH_WINDOW_MS` (mixed `k`s batch at `max(k)` and trim —
sound because ranking is a total order), caches results in an LRU keyed
by `(store version, query)` (`REPRO_SERVE_CACHE`; a `/reload` bumps the
version so stale hits are structurally impossible), and records p50/p99
latency, hit rate and batch occupancy into `repro.obs` metrics and the
run ledger.

The guard (`repro.serve.guard`) hardens that front end for production:
admission is bounded (`REPRO_SERVE_QUEUE`; overflow sheds `503` +
`Retry-After` + `serve.shed`), bodies over `REPRO_SERVE_MAX_BODY` are
refused with `413` before they are read, every request carries a
deadline (`REPRO_SERVE_DEADLINE_MS`; breach answers `504`), and a
`CircuitBreaker` steps the backend down `ivf → exact → cache-only`
after `REPRO_SERVE_BREAKER_THRESHOLD` consecutive failures, probing
half-open every `REPRO_SERVE_BREAKER_COOLDOWN_MS` until it recovers.
`/healthz` reports `ok|degraded|draining` (non-200 when not ok);
`stop()` / SIGTERM drains gracefully within
`REPRO_SERVE_DRAIN_TIMEOUT_MS`.  Chaos hooks (`slow_index`,
`index_error`, `queue_overflow`, `shard_corrupt_read` via
`REPRO_FAULTS`) drive the whole ladder deterministically in tests, the
`chaos_degrade_25k` benchmark case, and `tools/serve_chaos_smoke.py`;
`retry_call`/`backoff_delays` give clients (`repro serve query
--retries`, the load generator) deterministic jittered backoff.  With
no faults none of this perturbs the batched==serial bit-identity
contract.

```bash
python -m repro serve export --dataset cora --epochs 100 --store ./store
python -m repro serve query --store ./store --node 7 -k 10 --json
python -m repro serve run --store ./store --port 8707
# tracked benchmark: throughput, recall, cached-argmax, 100k-store
# memory, chaos degradation + recovery
PYTHONPATH=src python -m pytest benchmarks/test_perf_serve.py -q
python tools/bench_compare.py BENCH_serve.json /tmp/BENCH_serve.json
PYTHONPATH=src python tools/serve_chaos_smoke.py
```
""",
}


def first_line(obj) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        return ""
    return doc.splitlines()[0]


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def document_package(name: str) -> list[str]:
    module = importlib.import_module(name)
    lines = [f"## `{name}`", ""]
    summary = first_line(module)
    if summary:
        lines += [summary, ""]
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        obj = getattr(module, symbol, None)
        if obj is None or inspect.ismodule(obj):
            continue
        if inspect.isclass(obj):
            lines.append(f"### class `{symbol}{signature_of(obj)}`")
            lines.append("")
            if first_line(obj):
                lines += [first_line(obj), ""]
            methods = [
                (m_name, m) for m_name, m in inspect.getmembers(obj)
                if not m_name.startswith("_")
                and (inspect.isfunction(m) or inspect.ismethod(m))
            ]
            for m_name, m in methods:
                desc = first_line(m)
                entry = f"- `{m_name}{signature_of(m)}`"
                if desc:
                    entry += f" — {desc}"
                lines.append(entry)
            if methods:
                lines.append("")
        elif callable(obj):
            lines.append(f"### `{symbol}{signature_of(obj)}`")
            lines.append("")
            if first_line(obj):
                lines += [first_line(obj), ""]
        else:
            lines.append(f"### `{symbol}` (constant)")
            lines.append("")
    notes = PACKAGE_NOTES.get(name)
    if notes:
        lines += [notes, ""]
    lines.append("")
    return lines


def main() -> Path:
    lines = ["# API reference", "",
             "Auto-generated by `tools/gen_api_docs.py`; regenerate after "
             "changing any public signature.", ""]
    for package in PACKAGES:
        lines += document_package(package)
    out = Path(__file__).parent.parent / "docs" / "API.md"
    out.parent.mkdir(exist_ok=True)
    out.write_text("\n".join(lines))
    print(f"wrote {out} ({len(lines)} lines)")
    return out


if __name__ == "__main__":
    main()
